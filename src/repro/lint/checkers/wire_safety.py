"""REPRO-WIRE01 — pickle must not spread past the cluster shim.

The ROADMAP's untrusted-peer hardening item requires replacing the
cluster's pickled job transport with a restricted, schema-checked
serialisation (``repro.wire``).  That migration is only tractable while
the pickle surface stays *pinned to one file*: the allowlisted
``repro/cluster/protocol.py`` shim, whose docstring states the
trusted-peers-only stance.  This rule fails any new
``pickle.loads/dumps/load/dump`` (and friends) anywhere else, so the
surface that must migrate can never silently grow.

Also flagged: ``np.load(..., allow_pickle=True)`` — the artifact cache
deliberately reads with ``allow_pickle=False`` so a poisoned ``.npz``
cannot execute code, and nothing else may weaken that.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, Tuple

from repro.lint.core import Checker, dotted_name

__all__ = ["WireSafetyChecker", "PICKLE_ALLOWLIST"]

#: POSIX path suffixes allowed to touch pickle: the single cluster
#: transport shim (see its module docstring for the trust stance).
PICKLE_ALLOWLIST = ("repro/cluster/protocol.py",)

#: Pickle-family entry points (module.function).
_PICKLE_CALLS = {
    "pickle.loads",
    "pickle.dumps",
    "pickle.load",
    "pickle.dump",
    "pickle.Unpickler",
    "pickle.Pickler",
    "cPickle.loads",
    "cPickle.dumps",
    "marshal.loads",
    "marshal.dumps",
    "marshal.load",
    "marshal.dump",
    "shelve.open",
}


class WireSafetyChecker(Checker):
    rule = "REPRO-WIRE01"
    description = (
        "pickle/marshal call outside the allowlisted repro/cluster/protocol.py "
        "shim (or np.load with allow_pickle=True)"
    )

    def applies_to(self, path: pathlib.PurePath) -> bool:
        posix = path.as_posix()
        return not any(posix.endswith(suffix) for suffix in PICKLE_ALLOWLIST)

    def check(
        self, tree: ast.Module, source: str, path: pathlib.PurePath
    ) -> Iterable[Tuple[int, int, str]]:
        from_pickle = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "pickle",
                "marshal",
            ):
                for alias in node.names:
                    from_pickle.add(alias.asname or alias.name)
        violations = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _PICKLE_CALLS:
                violations.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"{name}() outside the allowlisted cluster shim "
                        "(repro/cluster/protocol.py); serialise through "
                        "repro.wire instead",
                    )
                )
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in from_pickle
            ):
                violations.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"{node.func.id}() (imported from pickle/marshal) "
                        "outside the allowlisted cluster shim; serialise "
                        "through repro.wire instead",
                    )
                )
                continue
            for keyword in node.keywords:
                if (
                    keyword.arg == "allow_pickle"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    violations.append(
                        (
                            node.lineno,
                            node.col_offset,
                            "allow_pickle=True re-opens arbitrary code "
                            "execution on artifact reads; keep it False",
                        )
                    )
        return violations
