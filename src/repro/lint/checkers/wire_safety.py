"""REPRO-WIRE01 — pickle must not spread past the cluster shim.

The ROADMAP's untrusted-peer hardening item requires replacing the
cluster's pickled job transport with a restricted, schema-checked
serialisation (``repro.wire``).  That migration is only tractable while
the pickle surface stays *pinned to one file*: the allowlisted
``repro/cluster/protocol.py`` shim, whose docstring states the
trusted-peers-only stance.  This rule fails any new
``pickle.loads/dumps/load/dump`` (and friends) anywhere else, so the
surface that must migrate can never silently grow.

Also flagged: ``np.load(..., allow_pickle=True)`` — the artifact cache
deliberately reads with ``allow_pickle=False`` so a poisoned ``.npz``
cannot execute code, and nothing else may weaken that.

Raw-buffer decoding is confined the same way: ``np.frombuffer`` turns
attacker-supplied bytes into arrays with no validation of its own, so
every call must live behind the length/dtype/shape checks in
``repro/wire.py`` (``unpack_arrays``) or the artifact cache's metadata
round-trip (``repro/runtime/cache.py``) — the ``FROMBUFFER_ALLOWLIST``.
Anywhere else, decode through :func:`repro.wire.unpack_arrays`.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, Tuple

from repro.lint.core import Checker, dotted_name

__all__ = ["WireSafetyChecker", "PICKLE_ALLOWLIST", "FROMBUFFER_ALLOWLIST"]

#: POSIX path suffixes allowed to touch pickle: the single cluster
#: transport shim (see its module docstring for the trust stance).
PICKLE_ALLOWLIST = ("repro/cluster/protocol.py",)

#: POSIX path suffixes allowed to call ``np.frombuffer``: the wire array
#: codec (which validates length/dtype/shape before viewing) and the
#: artifact cache's metadata round-trip.  Everything else must decode
#: through ``repro.wire.unpack_arrays``.
FROMBUFFER_ALLOWLIST = ("repro/wire.py", "repro/runtime/cache.py")

#: Raw-buffer decoders (module.function) confined to the allowlist above.
_FROMBUFFER_CALLS = {
    "np.frombuffer",
    "numpy.frombuffer",
    "np.fromstring",
    "numpy.fromstring",
}

#: Pickle-family entry points (module.function).
_PICKLE_CALLS = {
    "pickle.loads",
    "pickle.dumps",
    "pickle.load",
    "pickle.dump",
    "pickle.Unpickler",
    "pickle.Pickler",
    "cPickle.loads",
    "cPickle.dumps",
    "marshal.loads",
    "marshal.dumps",
    "marshal.load",
    "marshal.dump",
    "shelve.open",
}


class WireSafetyChecker(Checker):
    rule = "REPRO-WIRE01"
    description = (
        "pickle/marshal call outside the allowlisted repro/cluster/protocol.py "
        "shim, np.load with allow_pickle=True, or np.frombuffer outside the "
        "validated repro.wire / cache codecs"
    )

    def applies_to(self, path: pathlib.PurePath) -> bool:
        posix = path.as_posix()
        return not any(posix.endswith(suffix) for suffix in PICKLE_ALLOWLIST)

    def check(
        self, tree: ast.Module, source: str, path: pathlib.PurePath
    ) -> Iterable[Tuple[int, int, str]]:
        frombuffer_exempt = any(
            path.as_posix().endswith(suffix) for suffix in FROMBUFFER_ALLOWLIST
        )
        from_pickle = set()
        from_numpy = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "pickle",
                "marshal",
            ):
                for alias in node.names:
                    from_pickle.add(alias.asname or alias.name)
            if isinstance(node, ast.ImportFrom) and node.module == "numpy":
                for alias in node.names:
                    if alias.name in ("frombuffer", "fromstring"):
                        from_numpy.add(alias.asname or alias.name)
        violations = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not frombuffer_exempt and (
                name in _FROMBUFFER_CALLS
                or (isinstance(node.func, ast.Name) and node.func.id in from_numpy)
            ):
                violations.append(
                    (
                        node.lineno,
                        node.col_offset,
                        "raw-buffer decoding outside the validated codecs "
                        "(repro/wire.py, repro/runtime/cache.py); decode "
                        "through repro.wire.unpack_arrays instead",
                    )
                )
                continue
            if name in _PICKLE_CALLS:
                violations.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"{name}() outside the allowlisted cluster shim "
                        "(repro/cluster/protocol.py); serialise through "
                        "repro.wire instead",
                    )
                )
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in from_pickle
            ):
                violations.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"{node.func.id}() (imported from pickle/marshal) "
                        "outside the allowlisted cluster shim; serialise "
                        "through repro.wire instead",
                    )
                )
                continue
            for keyword in node.keywords:
                if (
                    keyword.arg == "allow_pickle"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    violations.append(
                        (
                            node.lineno,
                            node.col_offset,
                            "allow_pickle=True re-opens arbitrary code "
                            "execution on artifact reads; keep it False",
                        )
                    )
        return violations
