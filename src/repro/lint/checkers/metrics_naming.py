"""REPRO-OBS01 — metric names must obey the registry's naming rule.

PR 6 enforced ``repro_<subsystem>_<what>_<unit>`` (unit one of
``total`` / ``bytes`` / ``seconds`` / ``ratio``) at *registration* time
and re-checked it with an inline CI script that imported every tier.
This checker re-homes that lint as static analysis: it validates the
name (and label names) at every **construction site** — calls to
``REGISTRY.counter/gauge/histogram``, the ``repro.obs`` module-level
helpers, and direct ``Counter(...)`` / ``Gauge(...)`` /
``Histogram(...)`` literals — so a bad name fails ``python -m repro
lint`` before the module is ever imported, and dynamically-composed
names (non-literal first argument) still fall back to the runtime
``ValueError`` in :mod:`repro.obs.metrics`.

The regex here is deliberately the same pattern
:data:`repro.obs.metrics.METRIC_NAME_RE` compiles; a unit test pins the
two together so they cannot drift.
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Iterable, Tuple

from repro.lint.core import Checker, dotted_name

__all__ = ["MetricsNamingChecker", "METRIC_NAME_PATTERN", "LABEL_NAME_PATTERN"]

#: Kept textually identical to repro.obs.metrics.METRIC_NAME_RE (pinned
#: by tests/test_lint.py) — the lint layer must not import the runtime.
METRIC_NAME_PATTERN = r"^repro_[a-z_]+_(total|bytes|seconds|ratio)$"
LABEL_NAME_PATTERN = r"^[a-z_][a-z0-9_]*$"

_METRIC_NAME_RE = re.compile(METRIC_NAME_PATTERN)
_LABEL_NAME_RE = re.compile(LABEL_NAME_PATTERN)

#: Factory method / helper names whose first argument is a metric name.
_FACTORY_NAMES = {"counter", "gauge", "histogram"}

#: Direct constructor names.
_CONSTRUCTOR_NAMES = {"Counter", "Gauge", "Histogram"}


class MetricsNamingChecker(Checker):
    rule = "REPRO-OBS01"
    description = (
        "metric constructed with a name (or label) violating "
        "repro_[a-z_]+_(total|bytes|seconds|ratio)"
    )

    def check(
        self, tree: ast.Module, source: str, path: pathlib.PurePath
    ) -> Iterable[Tuple[int, int, str]]:
        violations = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not _is_metric_site(node):
                continue
            name_node = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "name":
                    name_node = keyword.value
            if isinstance(name_node, ast.Constant) and isinstance(
                name_node.value, str
            ):
                if not _METRIC_NAME_RE.match(name_node.value):
                    violations.append(
                        (
                            name_node.lineno,
                            name_node.col_offset,
                            f"metric name {name_node.value!r} does not match "
                            f"{METRIC_NAME_PATTERN}",
                        )
                    )
            for keyword in node.keywords:
                if keyword.arg != "labels":
                    continue
                for element in _constant_strings(keyword.value):
                    if not _LABEL_NAME_RE.match(element.value):
                        violations.append(
                            (
                                element.lineno,
                                element.col_offset,
                                f"label name {element.value!r} does not "
                                f"match {LABEL_NAME_PATTERN}",
                            )
                        )
        return violations


def _is_metric_site(call: ast.Call) -> bool:
    """A registry factory call, an obs helper, or a direct constructor."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in _CONSTRUCTOR_NAMES
    if isinstance(func, ast.Attribute):
        if func.attr in _CONSTRUCTOR_NAMES:
            return True  # e.g. metrics.Counter(...) / obs.Gauge(...)
        if func.attr in _FACTORY_NAMES:
            receiver = dotted_name(func.value)
            if receiver is None:
                return False
            # REGISTRY.counter(...), registry.gauge(...), obs.histogram(...),
            # self.registry.counter(...) — anything registry/obs flavoured.
            tail = receiver.rsplit(".", 1)[-1].lower()
            return tail in {"registry", "obs", "metrics"} or "registry" in tail
    return False


def _constant_strings(node: ast.expr):
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                yield element
