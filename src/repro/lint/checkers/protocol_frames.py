"""REPRO-PROTO01 — frame-type literals must be documented protocol frames.

Both wire protocols are deliberately literal-heavy NDJSON (``{"op":
"submit", ...}`` / ``{"event": "chunk", ...}``), which means a typo'd or
undocumented frame type — ``"chunk-done"`` for ``"chunk_done"``, a new
event nobody added to ``docs/protocol.md`` — parses, ships, and fails
only at the far end of a socket.  This rule pins every frame-type
literal at *send* sites (dict literals with an ``"op"``/``"event"`` key)
and *match* sites (comparisons and ``match`` statements against ``op`` /
``event`` expressions) to the protocol constant tuples:

* :data:`repro.service.protocol.SERVICE_OPS` /
  :data:`~repro.service.protocol.SERVICE_EVENTS` for files under the
  ``service`` package;
* :data:`repro.cluster.protocol.WORKER_OPS` /
  :data:`~repro.cluster.protocol.CONTROL_OPS` /
  :data:`~repro.cluster.protocol.COORDINATOR_EVENTS` for files under
  ``cluster``;
* :data:`repro.gateway.routes.SSE_EVENTS` for files under ``gateway``
  (the gateway's ``event`` vocabulary is its SSE stream);
* the union everywhere else (clients and tests may speak either).

The HTTP front door gets the same treatment: any string literal shaped
like a route (``"METHOD /path"`` — e.g. ``"GET /v1/sweeps/{id}"``) must
be a member of :data:`repro.gateway.routes.ROUTES`, wherever it appears,
so a handler, a test or a metric label cannot reference a route the
table (and ``docs/gateway.md``) does not declare.

The tuples are read from the protocol modules' *source* (AST, no
import), and ``tests/test_docs.py`` pins the same tuples against
``docs/protocol.md`` / ``docs/gateway.md`` — so code, checker and
documentation can only move together.
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.core import Checker

__all__ = ["ProtocolFramesChecker", "load_protocol_vocabulary"]

#: Constant tuples harvested from each protocol module's AST.
_SERVICE_CONSTANTS = ("SERVICE_OPS", "SERVICE_EVENTS")
_CLUSTER_CONSTANTS = ("WORKER_OPS", "CONTROL_OPS", "COORDINATOR_EVENTS")
_GATEWAY_CONSTANTS = ("ROUTES", "SSE_EVENTS")

#: A string literal shaped like a gateway route: ``"METHOD /path"``.
#: (One space, method in caps, path with no spaces — raw HTTP request
#: lines like ``"GET / HTTP/1.0"`` have a second space and do not match.)
_ROUTE_SHAPE_RE = re.compile(r"^[A-Z]+ /[^ ]*$")

_REPRO_ROOT = pathlib.Path(__file__).resolve().parents[2]

_vocabulary_cache: Optional[Dict[str, Dict[str, Set[str]]]] = None


def _harvest_tuples(path: pathlib.Path, names: Tuple[str, ...]) -> Dict[str, Set[str]]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found: Dict[str, Set[str]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id in names:
                value = ast.literal_eval(node.value)
                found[target.id] = {str(item) for item in value}
    missing = [name for name in names if name not in found]
    if missing:
        raise RuntimeError(f"{path} does not define {missing} — vocabulary lost")
    return found


def load_protocol_vocabulary() -> Dict[str, Dict[str, Set[str]]]:
    """``{"service"|"cluster"|"gateway"|"any": {"op"|"event"|"route": {...}}}``.

    Parsed once per process from the shipped protocol modules (located
    relative to this package, so the vocabulary is always the code under
    the same ``repro`` tree as the checker).  The ``route`` set is the
    gateway's :data:`~repro.gateway.routes.ROUTES` table and is the same
    in every scope — route-shaped literals are pinned wherever they
    appear.
    """
    global _vocabulary_cache
    if _vocabulary_cache is None:
        service = _harvest_tuples(
            _REPRO_ROOT / "service" / "protocol.py", _SERVICE_CONSTANTS
        )
        cluster = _harvest_tuples(
            _REPRO_ROOT / "cluster" / "protocol.py", _CLUSTER_CONSTANTS
        )
        gateway = _harvest_tuples(
            _REPRO_ROOT / "gateway" / "routes.py", _GATEWAY_CONSTANTS
        )
        routes = gateway["ROUTES"]
        service_vocab = {
            "op": service["SERVICE_OPS"],
            "event": service["SERVICE_EVENTS"],
            "route": routes,
        }
        cluster_vocab = {
            "op": cluster["WORKER_OPS"] | cluster["CONTROL_OPS"],
            "event": cluster["COORDINATOR_EVENTS"],
            "route": routes,
        }
        gateway_vocab = {
            "op": service["SERVICE_OPS"],  # the gateway speaks to the service
            "event": gateway["SSE_EVENTS"],
            "route": routes,
        }
        _vocabulary_cache = {
            "service": service_vocab,
            "cluster": cluster_vocab,
            "gateway": gateway_vocab,
            "any": {
                "op": service_vocab["op"] | cluster_vocab["op"],
                "event": service_vocab["event"]
                | cluster_vocab["event"]
                | gateway_vocab["event"],
                "route": routes,
            },
        }
    return _vocabulary_cache


class ProtocolFramesChecker(Checker):
    rule = "REPRO-PROTO01"
    description = (
        "frame-type literal at a send/match site that is not a member of "
        "the documented protocol constants"
    )

    def check(
        self, tree: ast.Module, source: str, path: pathlib.PurePath
    ) -> Iterable[Tuple[int, int, str]]:
        vocabulary = load_protocol_vocabulary()
        if "service" in path.parts:
            vocab, scope = vocabulary["service"], "service protocol"
        elif "cluster" in path.parts:
            vocab, scope = vocabulary["cluster"], "cluster protocol"
        elif "gateway" in path.parts:
            vocab, scope = vocabulary["gateway"], "gateway"
        else:
            vocab, scope = vocabulary["any"], "service or cluster protocol"
        violations: List[Tuple[int, int, str]] = []

        def _flag(node: ast.expr, kind: str, value: str) -> None:
            constants = (
                "SERVICE_OPS/SERVICE_EVENTS"
                if scope == "service protocol"
                else "WORKER_OPS/CONTROL_OPS/COORDINATOR_EVENTS"
                if scope == "cluster protocol"
                else "ROUTES/SSE_EVENTS"
                if scope == "gateway"
                else "the protocol constant tuples"
            )
            violations.append(
                (
                    node.lineno,
                    node.col_offset,
                    f'frame type "{value}" is not a documented {scope} '
                    f"{kind} (see {constants} in the protocol modules and "
                    "docs/protocol.md)",
                )
            )

        def _flag_route(node: ast.expr, value: str) -> None:
            violations.append(
                (
                    node.lineno,
                    node.col_offset,
                    f'route-shaped literal "{value}" is not a member of the '
                    "gateway route table (see ROUTES in repro/gateway/"
                    "routes.py and docs/gateway.md)",
                )
            )

        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _ROUTE_SHAPE_RE.match(node.value)
                and node.value not in vocab["route"]
            ):
                _flag_route(node, node.value)
            if isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    kind = _frame_key(key)
                    if (
                        kind is not None
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                        and value.value not in vocab[kind]
                    ):
                        _flag(value, kind, value.value)
            elif isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                kinds = [_frame_expr(side) for side in sides]
                if not any(kinds):
                    continue
                kind = next(k for k in kinds if k)
                for side, side_kind in zip(sides, kinds):
                    if side_kind is not None:
                        continue  # the frame expression itself
                    for constant in _string_constants(side):
                        if constant.value not in vocab[kind]:
                            _flag(constant, kind, constant.value)
            elif isinstance(node, ast.Match):
                kind = _frame_expr(node.subject)
                if kind is None:
                    continue
                for case in node.cases:
                    for constant in _match_constants(case.pattern):
                        if constant.value not in vocab[kind]:
                            _flag(constant, kind, constant.value)
        return violations


def _frame_key(node: "ast.expr | None") -> Optional[str]:
    """``"op"``/``"event"`` when ``node`` is that dict-key constant."""
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value in ("op", "event")
    ):
        return node.value
    return None


def _frame_expr(node: "ast.expr | None") -> Optional[str]:
    """Recognise expressions that *read* a frame type.

    ``op`` / ``event`` names, ``message.get("op")`` calls and
    ``message["event"]`` subscripts all mark the comparison (or
    ``match``) as a frame-type site.
    """
    if node is None:
        return None
    if isinstance(node, ast.Name) and node.id in ("op", "event"):
        return node.id
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
    ):
        return _frame_key(node.args[0])
    if isinstance(node, ast.Subscript):
        return _frame_key(node.slice)
    return None


def _string_constants(node: ast.expr):
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        yield node
    elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            yield from _string_constants(element)


def _match_constants(pattern: ast.pattern):
    if isinstance(pattern, ast.MatchValue):
        yield from _string_constants(pattern.value)
    elif isinstance(pattern, ast.MatchOr):
        for sub in pattern.patterns:
            yield from _match_constants(sub)
