"""REPRO-ASYNC01 — blocking calls inside ``async def`` bodies.

The service, cluster and observability tiers are single event loop per
process: one ``time.sleep`` in a handler stalls every connected client,
every heartbeat and every watch stream at once.  The rule flags, inside
any ``async def`` body (but not inside nested *sync* functions, which
are typically ``run_in_executor`` targets):

* ``time.sleep(...)`` — use ``await asyncio.sleep(...)``;
* any ``socket.*(...)`` module call — use asyncio streams;
* ``subprocess.run/call/check_call/check_output/Popen/getoutput/
  getstatusoutput`` and ``os.system/os.popen`` — use
  ``asyncio.create_subprocess_*`` or a worker thread;
* the builtin ``open(...)`` and ``pathlib`` read/write helpers
  (``read_text`` & friends) — sync file I/O blocks the loop; stage it
  through ``run_in_executor``;
* loop-less ``.result()`` — ``concurrent.futures`` ``.result()`` blocks
  the loop it is called from (``await`` the future, or wrap it with
  ``asyncio.wrap_future``).

Legitimate exceptions (an ``asyncio.Future.result()`` after the future
is known done, a tiny config read at startup) carry a
``# repro: ignore[REPRO-ASYNC01] -- reason`` suppression.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, Set, Tuple

from repro.lint.core import Checker, dotted_name

__all__ = ["AsyncSafetyChecker"]

#: Exact dotted calls that block.
_BLOCKING_CALLS = {
    "time.sleep": "time.sleep() blocks the event loop; use `await asyncio.sleep(...)`",
    "os.system": "os.system() blocks the event loop; use asyncio.create_subprocess_shell",
    "os.popen": "os.popen() blocks the event loop; use asyncio.create_subprocess_shell",
    "os.wait": "os.wait() blocks the event loop; await the process instead",
}

#: Module prefixes whose calls block (any attribute of these modules).
_BLOCKING_PREFIXES = {
    "socket": "synchronous socket call blocks the event loop; use asyncio streams",
    "subprocess": "synchronous subprocess call blocks the event loop; "
    "use asyncio.create_subprocess_exec or a worker thread",
}

#: Sync file-I/O method names on attribute calls (pathlib idiom).
_FILE_IO_METHODS = {"read_text", "write_text", "read_bytes", "write_bytes"}


class AsyncSafetyChecker(Checker):
    rule = "REPRO-ASYNC01"
    description = (
        "blocking call (time.sleep, socket.*, subprocess.*, sync file I/O, "
        "loop-less .result()) inside an async def body"
    )

    def check(
        self, tree: ast.Module, source: str, path: pathlib.PurePath
    ) -> Iterable[Tuple[int, int, str]]:
        # Names bound by `from time import sleep` style imports.
        sleep_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        sleep_aliases.add(alias.asname or alias.name)
        violations: list = []
        for node in ast.walk(tree):
            if isinstance(node, ast.AsyncFunctionDef):
                for call in _async_calls(node):
                    message = _blocking_reason(call, sleep_aliases)
                    if message is not None:
                        violations.append(
                            (call.lineno, call.col_offset, message)
                        )
        return violations


def _async_calls(func: ast.AsyncFunctionDef) -> Iterable[ast.Call]:
    """Calls lexically inside ``func``'s own async context.

    Descends into nested *async* defs (their bodies run on the same
    loop) but not into nested sync defs or lambdas — those are usually
    executor targets whose blocking is the whole point.
    """
    stack: list = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _blocking_reason(call: ast.Call, sleep_aliases: Set[str]) -> "str | None":
    func = call.func
    name = dotted_name(func)
    if name is not None:
        if name in _BLOCKING_CALLS:
            return f"{name}(): {_BLOCKING_CALLS[name]}"
        root = name.split(".", 1)[0]
        if root in _BLOCKING_PREFIXES and "." in name:
            return f"{name}(): {_BLOCKING_PREFIXES[root]}"
    if isinstance(func, ast.Name):
        if func.id == "open":
            return (
                "open(): synchronous file I/O blocks the event loop; "
                "stage it through run_in_executor"
            )
        if func.id in sleep_aliases:
            return (
                f"{func.id}() (time.sleep) blocks the event loop; "
                "use `await asyncio.sleep(...)`"
            )
    if isinstance(func, ast.Attribute):
        if func.attr == "result" and not call.args and not call.keywords:
            return (
                ".result() without a timeout blocks the event loop; "
                "await the future (or asyncio.wrap_future) instead"
            )
        if func.attr in _FILE_IO_METHODS:
            return (
                f".{func.attr}(): synchronous file I/O blocks the event "
                "loop; stage it through run_in_executor"
            )
    return None
