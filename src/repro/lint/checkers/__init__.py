"""The shipped rule set — one checker per repository contract.

========================  ====================================================
Rule                      Contract it guards
========================  ====================================================
``REPRO-ASYNC01``         asyncio tiers never block their event loop
``REPRO-DET01``           solver paths stay bit-for-bit deterministic
``REPRO-WIRE01``          pickle stays pinned to the one cluster shim
``REPRO-ERR01``           broad exception handlers never swallow silently
``REPRO-OBS01``           metric names obey the registry naming rule
``REPRO-PROTO01``         frame-type literals match the documented protocols
========================  ====================================================

``docs/lint.md`` is the full reference (rationale, examples, suppression
policy); ``tests/test_docs.py`` pins that table to this registry.
"""

from __future__ import annotations

from repro.lint.checkers.async_safety import AsyncSafetyChecker
from repro.lint.checkers.determinism import DeterminismChecker, SOLVER_PACKAGES
from repro.lint.checkers.metrics_naming import MetricsNamingChecker
from repro.lint.checkers.protocol_frames import (
    ProtocolFramesChecker,
    load_protocol_vocabulary,
)
from repro.lint.checkers.silent_failure import SilentFailureChecker
from repro.lint.checkers.wire_safety import PICKLE_ALLOWLIST, WireSafetyChecker

__all__ = [
    "ALL_CHECKERS",
    "RULES",
    "AsyncSafetyChecker",
    "DeterminismChecker",
    "MetricsNamingChecker",
    "ProtocolFramesChecker",
    "SilentFailureChecker",
    "WireSafetyChecker",
    "PICKLE_ALLOWLIST",
    "SOLVER_PACKAGES",
    "load_protocol_vocabulary",
]

#: Every shipped checker, instantiated once (checkers are stateless).
ALL_CHECKERS = (
    AsyncSafetyChecker(),
    DeterminismChecker(),
    WireSafetyChecker(),
    SilentFailureChecker(),
    MetricsNamingChecker(),
    ProtocolFramesChecker(),
)

#: ``{rule id: one-line description}`` for ``--list-rules`` and the docs.
RULES = {checker.rule: checker.description for checker in ALL_CHECKERS}
