"""REPRO-ERR01 — broad exception handlers must not swallow silently.

A ``try: ... except Exception: pass`` in a serving tier converts every
future bug in the guarded block into an invisible one: the service keeps
answering, the coordinator keeps scheduling, and nothing anywhere
records that work is being dropped (this is exactly how subscriber
failures vanished in ``obs/events.py`` before PR 7).  The repository's
stance: a broad handler must *do* something — re-raise, log/warn, emit
an event, bump a ``repro.obs`` counter, store the error — or carry a
``# repro: ignore[REPRO-ERR01] -- reason`` suppression stating why
dropping is genuinely correct.

The rule flags ``except``/``except Exception``/``except BaseException``
handlers (bare or aliased, alone or in a tuple) whose body consists of
nothing but ``pass`` / ``...`` / ``continue`` / ``break`` / a bare or
constant ``return``.  Narrow handlers (``except FileNotFoundError:
pass``) are deliberate-looking and stay legal — the rule targets the
broad nets that catch bugs, not conditions.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, Tuple

from repro.lint.core import Checker

__all__ = ["SilentFailureChecker"]

_BROAD = {"Exception", "BaseException"}


class SilentFailureChecker(Checker):
    rule = "REPRO-ERR01"
    description = (
        "broad `except Exception` handler that neither re-raises, logs, "
        "counts, nor stores the error (silent swallow)"
    )

    def check(
        self, tree: ast.Module, source: str, path: pathlib.PurePath
    ) -> Iterable[Tuple[int, int, str]]:
        violations = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node.type):
                continue
            if _body_is_silent(node.body):
                caught = (
                    "bare except"
                    if node.type is None
                    else f"except {ast.unparse(node.type)}"
                )
                violations.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"{caught}: handler swallows the error silently; "
                        "re-raise, log, or count it on a repro.obs counter "
                        "(or suppress with a stated reason)",
                    )
                )
        return violations


def _is_broad(type_node: "ast.expr | None") -> bool:
    if type_node is None:  # bare except
        return True
    if isinstance(type_node, ast.Tuple):
        return any(_is_broad(element) for element in type_node.elts)
    if isinstance(type_node, ast.Name):
        return type_node.id in _BROAD
    if isinstance(type_node, ast.Attribute):
        return type_node.attr in _BROAD
    return False


def _body_is_silent(body) -> bool:
    """True when every statement is a no-op (pass/.../continue/break or a
    bare/constant return)."""
    for statement in body:
        if isinstance(statement, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(statement, ast.Return) and (
            statement.value is None
            or isinstance(statement.value, ast.Constant)
        ):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring / ellipsis expression
        return False
    return True
