"""REPRO-DET01 — unseeded randomness in solver paths.

The repository's core contract is that distributed == parallel == serial
*bit-for-bit*: every job is a deterministic work unit, artifact-cache
keys assume re-running a plan reproduces its bytes, and the journal
replays interrupted sweeps expecting identical results.  One call into
global, unseeded randomness anywhere in a solver path breaks all three
silently.

Flagged, in the modelling/solver packages (``circuits``, ``core``,
``dnn``, ``eventsim``, ``converters``, ``multiplier``, ``analysis``):

* legacy module-level NumPy randomness — ``np.random.rand``,
  ``np.random.normal``, ``np.random.seed`` … (global-state RNG; even
  *seeded*, it is process-global and order-dependent across executors);
* any stdlib ``random.*`` call — same global-state problem;
* ``default_rng()`` / ``np.random.default_rng()`` with no arguments —
  OS-entropy seeding, unreproducible by construction.

The sanctioned idiom (see ``repro.core.pvt``): derive per-job seeds with
``np.random.SeedSequence(seed).spawn(n)`` and pass explicit
``np.random.Generator`` instances down the call chain.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, Set, Tuple

from repro.lint.core import Checker, dotted_name

__all__ = ["DeterminismChecker", "SOLVER_PACKAGES"]

#: Path segments marking the deterministic solver/model paths this rule
#: patrols (the service/cluster/runtime tiers hold no model math).
SOLVER_PACKAGES = (
    "circuits",
    "core",
    "dnn",
    "eventsim",
    "converters",
    "multiplier",
    "analysis",
)

#: ``np.random`` attributes that are deterministic plumbing, not draws.
_NP_RANDOM_ALLOWED = {
    "default_rng",  # argless form is flagged separately
    "SeedSequence",
    "Generator",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


class DeterminismChecker(Checker):
    rule = "REPRO-DET01"
    description = (
        "unseeded randomness (np.random.* legacy calls, stdlib random, "
        "argless default_rng()) in a solver path"
    )

    def applies_to(self, path: pathlib.PurePath) -> bool:
        return any(part in SOLVER_PACKAGES for part in path.parts)

    def check(
        self, tree: ast.Module, source: str, path: pathlib.PurePath
    ) -> Iterable[Tuple[int, int, str]]:
        numpy_aliases, random_aliases, default_rng_aliases = _rng_aliases(tree)
        violations = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            message = _nondeterministic_reason(
                node, numpy_aliases, random_aliases, default_rng_aliases
            )
            if message is not None:
                violations.append((node.lineno, node.col_offset, message))
        return violations


def _rng_aliases(tree: ast.Module) -> Tuple[Set[str], Set[str], Set[str]]:
    """Names bound to numpy, stdlib random, and ``default_rng`` itself."""
    numpy_aliases: Set[str] = set()
    random_aliases: Set[str] = set()
    default_rng_aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
                elif alias.name == "random":
                    random_aliases.add(alias.asname or "random")
                elif alias.name == "numpy.random" and alias.asname:
                    # `import numpy.random as npr`: npr.X == numpy.random.X
                    numpy_aliases.add(f"{alias.asname}?direct")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy.random":
                for alias in node.names:
                    if alias.name == "default_rng":
                        default_rng_aliases.add(alias.asname or alias.name)
            elif node.module == "random":
                for alias in node.names:
                    random_aliases.add(f"{alias.asname or alias.name}?from")
    return numpy_aliases, random_aliases, default_rng_aliases


def _nondeterministic_reason(
    call: ast.Call,
    numpy_aliases: Set[str],
    random_aliases: Set[str],
    default_rng_aliases: Set[str],
) -> "str | None":
    func = call.func
    name = dotted_name(func)
    argless = not call.args and not call.keywords
    if name is not None:
        parts = name.split(".")
        # np.random.X(...) / numpy.random.X(...) / npr.X(...)
        attr = None
        if len(parts) >= 3 and parts[0] in numpy_aliases and parts[1] == "random":
            attr = parts[2]
        elif len(parts) == 2 and f"{parts[0]}?direct" in numpy_aliases:
            attr = parts[1]
        if attr is not None:
            if attr == "default_rng" and argless:
                return (
                    "default_rng() without a seed draws OS entropy; pass a "
                    "seed or a SeedSequence-derived child"
                )
            if attr not in _NP_RANDOM_ALLOWED:
                return (
                    f"legacy global-state call np.random.{attr}(); use an "
                    "explicit np.random.Generator seeded via SeedSequence"
                )
            return None
        # stdlib random module: random.X(...)
        if len(parts) == 2 and parts[0] in random_aliases:
            return (
                f"stdlib random.{parts[1]}() is process-global and "
                "unseeded; use a seeded np.random.Generator"
            )
    if isinstance(func, ast.Name):
        if func.id in default_rng_aliases and argless:
            return (
                "default_rng() without a seed draws OS entropy; pass a "
                "seed or a SeedSequence-derived child"
            )
        if f"{func.id}?from" in random_aliases:
            return (
                f"stdlib random.{func.id}() is process-global and "
                "unseeded; use a seeded np.random.Generator"
            )
    return None
