"""Core of the ``repro.lint`` static-analysis framework.

Everything the checkers share lives here: the :class:`Finding` record,
the :class:`Checker` base class, inline suppression parsing
(``# repro: ignore[RULE]``), file discovery, and :class:`LintRunner`,
which parses each file once and hands the AST to every registered
checker.  Like the rest of the observability stack the framework is
dependency-free — plain :mod:`ast`, no third-party linters — so it runs
anywhere the repository runs, including CI's bare matrix images.

The point of the subsystem is that the repository's *contracts* are
machine-checkable before anything executes: distributed == parallel ==
serial bit-for-bit (so no unseeded randomness in solver paths), the
asyncio tiers must never block their event loops, pickle must not leak
past the one allowlisted cluster shim, failures must never be silently
swallowed, and wire-frame vocabularies must match the documented
protocol constants.  One checker per contract; see
:mod:`repro.lint.checkers` and ``docs/lint.md``.

>>> import pathlib, tempfile
>>> with tempfile.TemporaryDirectory() as tmp:
...     bad = pathlib.Path(tmp) / "mod.py"
...     _ = bad.write_text("import pickle\\ndata = pickle.loads(blob)\\n")
...     findings = run_lint([bad]).findings
>>> [f.rule for f in findings]
['REPRO-WIRE01']
>>> findings[0].line
2
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Checker",
    "LintResult",
    "SUPPRESSION_RE",
    "discover_files",
    "dotted_name",
    "parse_suppressions",
    "run_lint",
]

#: Inline suppression marker.  ``# repro: ignore[RULE]`` (or a
#: comma-separated rule list) on the offending line silences those rules
#: for that line only; anything after ``--`` is the stated reason and is
#: encouraged (``docs/lint.md`` asks for one).
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore\[(?P<rules>[A-Za-z0-9_\-,\s\*]+)\]"
)

#: Severity vocabulary (today every shipped rule is an ``error``; the
#: field exists so advisory checkers can ride the same pipeline).
SEVERITIES = ("error", "warning")


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is kept exactly as the file was reached from the lint
    invocation (normalised to POSIX separators), so output lines are
    clickable from the directory the user ran the CLI in.  Baseline
    matching deliberately ignores ``line``/``col`` — see
    :mod:`repro.lint.baseline`.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity for baseline matching: stable across pure line moves."""
        return (self.rule, self.path, self.message)


class Checker:
    """Base class every rule implements.

    Subclasses set :attr:`rule` (the stable id reported on findings and
    accepted by ``--rule`` / suppressions), :attr:`description` (one
    line, rendered by ``--list-rules`` and pinned against ``docs/lint.md``)
    and implement :meth:`check`.  :meth:`applies_to` lets a rule scope
    itself to the packages whose contract it guards (the determinism
    rule only patrols solver paths, for example); everything else runs
    everywhere.
    """

    rule: str = "REPRO-XXX00"
    severity: str = "error"
    description: str = ""

    def applies_to(self, path: pathlib.PurePath) -> bool:
        return True

    def check(
        self, tree: ast.Module, source: str, path: pathlib.PurePath
    ) -> Iterable[Tuple[int, int, str]]:
        """Yield ``(line, col, message)`` violations for one parsed file."""
        raise NotImplementedError

    def finding(self, path: str, line: int, col: int, message: str) -> Finding:
        return Finding(
            path=path,
            line=line,
            col=col,
            rule=self.rule,
            message=message,
            severity=self.severity,
        )


@dataclasses.dataclass
class LintResult:
    """Outcome of one lint run (before baseline subtraction)."""

    findings: List[Finding]
    files_checked: int
    suppressed: int

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"`` (else ``None``).

    The shared resolver every checker uses to recognise module-level
    calls (``time.sleep``, ``np.random.rand``, ``pickle.loads``) without
    importing anything.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed on that line.

    ``*`` suppresses every rule on the line.  Matching is intentionally
    textual (comments are invisible to :mod:`ast`), the same trade-off
    ``# noqa`` makes.
    """
    suppressions: Dict[int, Set[str]] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        if "repro:" not in line:  # cheap pre-filter
            continue
        match = SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rules = {
            rule.strip().upper()
            for rule in match.group("rules").split(",")
            if rule.strip()
        }
        if rules:
            suppressions[line_no] = rules
    return suppressions


def discover_files(paths: Sequence[pathlib.Path]) -> Iterator[pathlib.Path]:
    """Expand files/directories into the ``.py`` files to lint.

    Directories recurse; hidden directories and ``__pycache__`` are
    skipped.  A named path that does not exist raises ``FileNotFoundError``
    (the CLI turns that into exit code 2).
    """
    seen: Set[pathlib.Path] = set()
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not any(
                    part.startswith(".") or part == "__pycache__"
                    for part in candidate.relative_to(path).parts
                )
            )
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _checker_registry() -> "List[Checker]":
    from repro.lint.checkers import ALL_CHECKERS

    return list(ALL_CHECKERS)


def run_lint(
    paths: Sequence[pathlib.Path],
    checkers: Optional[Sequence[Checker]] = None,
) -> LintResult:
    """Lint ``paths`` with ``checkers`` (default: every registered rule).

    Files that fail to parse produce a ``REPRO-PARSE`` finding instead of
    aborting the run — a syntactically broken file is itself a violation,
    and the remaining files still get checked.
    """
    active = _checker_registry() if checkers is None else list(checkers)
    findings: List[Finding] = []
    files_checked = 0
    suppressed = 0
    for file_path in discover_files(paths):
        files_checked += 1
        display = file_path.as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=display)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            line = getattr(error, "lineno", None) or 1
            findings.append(
                Finding(
                    path=display,
                    line=int(line),
                    col=0,
                    rule="REPRO-PARSE",
                    message=f"file does not parse: {error}",
                )
            )
            continue
        suppressions = parse_suppressions(source)
        for checker in active:
            if not checker.applies_to(file_path):
                continue
            for line, col, message in checker.check(tree, source, file_path):
                rules_here = suppressions.get(line, set())
                if checker.rule in rules_here or "*" in rules_here:
                    suppressed += 1
                    continue
                findings.append(checker.finding(display, line, col, message))
    findings.sort()
    return LintResult(
        findings=findings, files_checked=files_checked, suppressed=suppressed
    )
