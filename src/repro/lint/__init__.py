"""repro.lint — project-aware static analysis over the repo's contracts.

The fifth cross-cutting layer (PR 7): a dependency-free, :mod:`ast`-based
checker framework that turns the repository's *runtime* invariants into
*merge-time* gates.  The contracts it guards are the ones every other
tier is built on — distributed == parallel == serial bit-for-bit, asyncio
tiers never block their loops, pickle stays pinned to the one cluster
shim awaiting the ``repro.wire`` migration, failures are never silently
swallowed, metric names obey the registry rule, and wire-frame literals
match the documented protocol vocabulary.

Entry points:

* ``python -m repro lint [PATHS]`` — the CLI gate (``--format text|json``,
  ``--rule RULE``, ``--write-baseline``, ``--list-rules``; exit 0 clean /
  1 findings / 2 usage error);
* :func:`run_lint` — the library API the tests drive;
* ``# repro: ignore[RULE] -- reason`` — inline suppression;
* ``lint-baseline.json`` — committed grandfathered findings (shipped
  empty; see :mod:`repro.lint.baseline`).

``docs/lint.md`` is the rule reference.  Layering: ``repro.lint`` imports
nothing from the tiers it checks (it reads their *source*, never their
modules), so linting cannot execute the code under analysis.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.checkers import ALL_CHECKERS, RULES
from repro.lint.core import Checker, Finding, LintResult, run_lint

__all__ = [
    "ALL_CHECKERS",
    "Baseline",
    "Checker",
    "Finding",
    "LintResult",
    "RULES",
    "run_lint",
]
