"""``python -m repro lint`` — the CLI/CI gate over the checker registry.

Exit codes are the contract CI builds on:

* ``0`` — no findings outside the committed baseline (suppressed and
  baselined findings do not fail the gate);
* ``1`` — at least one fresh finding (printed, text or JSON);
* ``2`` — usage error (unknown rule id, missing path, unreadable
  baseline).

``--write-baseline`` records the current findings as grandfathered and
exits 0; ``--format json`` emits one machine-readable document on stdout
(the CI job uploads it as an artifact); ``--rule`` restricts the run to
a subset of rules (repeatable), which is how the CI metrics-naming gate
invokes exactly ``REPRO-OBS01``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.checkers import ALL_CHECKERS, RULES
from repro.lint.core import Finding, run_lint

__all__ = ["add_lint_arguments", "run_lint_command"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=pathlib.Path,
        metavar="PATHS",
        help="files or directories to lint (default: src if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is one document: findings + summary)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE",
        help="run only this rule id (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=pathlib.Path(DEFAULT_BASELINE_NAME),
        metavar="PATH",
        help=f"grandfathered-findings file (default: {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (report every finding)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (id + description) and exit",
    )


def run_lint_command(args: argparse.Namespace) -> int:
    if args.list_rules:
        width = max(len(rule) for rule in RULES)
        for rule, description in sorted(RULES.items()):
            print(f"{rule:<{width}}  {description}")
        return 0

    checkers = list(ALL_CHECKERS)
    if args.rule:
        wanted = {rule.upper() for rule in args.rule}
        unknown = wanted - set(RULES)
        if unknown:
            print(
                f"error: unknown rule(s) {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(RULES))})",
                file=sys.stderr,
            )
            return 2
        checkers = [checker for checker in checkers if checker.rule in wanted]

    paths: List[pathlib.Path] = list(args.paths)
    if not paths:
        default = pathlib.Path("src")
        paths = [default if default.is_dir() else pathlib.Path(".")]

    try:
        result = run_lint(paths, checkers)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(result.findings).write(args.baseline)
        print(
            f"wrote {len(result.findings)} finding(s) to {args.baseline}",
            file=sys.stderr,
        )
        return 0

    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(args.baseline)
        except (ValueError, json.JSONDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    fresh, baselined = baseline.filter(result.findings)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": 1,
                    "files_checked": result.files_checked,
                    "rules": sorted(checker.rule for checker in checkers),
                    "findings": [finding.to_dict() for finding in fresh],
                    "baselined": baselined,
                    "suppressed": result.suppressed,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in fresh:
            print(finding.format_text())
        summary = (
            f"{result.files_checked} file(s) checked, "
            f"{len(fresh)} finding(s)"
        )
        if baselined:
            summary += f", {baselined} baselined"
        if result.suppressed:
            summary += f", {result.suppressed} suppressed"
        print(summary, file=sys.stderr)
    return 1 if fresh else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Project-aware static analysis over the repro contracts.",
    )
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
