"""Committed baseline of grandfathered lint findings.

A baseline lets the lint gate turn on *today* even when historical
violations still exist: ``python -m repro lint --write-baseline`` records
the current findings in ``lint-baseline.json``, and subsequent runs fail
only on findings **not** in that file.  The shipped baseline is empty —
every true positive the checkers surfaced was fixed or explicitly
suppressed with a reason — and the self-check test keeps it that way;
the mechanism exists so future rules can land before their cleanups
finish.

Matching is by ``(rule, path, message)`` with multiplicity, deliberately
ignoring line/column so an unrelated edit that shifts a grandfathered
finding down the file does not break CI, while *adding a second
identical violation* in the same file still fails (the multiset only
absorbs as many findings as were recorded).

>>> from repro.lint.core import Finding
>>> old = Finding("a.py", 3, 0, "REPRO-DET01", "unseeded np.random.rand")
>>> moved = Finding("a.py", 9, 4, "REPRO-DET01", "unseeded np.random.rand")
>>> fresh = Finding("b.py", 1, 0, "REPRO-DET01", "unseeded np.random.rand")
>>> baseline = Baseline.from_findings([old])
>>> new, absorbed = baseline.filter([moved, fresh])
>>> [f.path for f in new], absorbed
(['b.py'], 1)
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter as _Multiset
from typing import Dict, List, Sequence, Tuple

from repro.lint.core import Finding

__all__ = ["BASELINE_VERSION", "DEFAULT_BASELINE_NAME", "Baseline"]

BASELINE_VERSION = 1

#: Default committed location, repo-root relative (the CLI default).
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_Key = Tuple[str, str, str]


class Baseline:
    """A multiset of grandfathered ``(rule, path, message)`` findings."""

    def __init__(self, entries: Sequence[Dict[str, str]] = ()):
        self._entries: "_Multiset[_Key]" = _Multiset(
            (entry["rule"], entry["path"], entry["message"]) for entry in entries
        )

    # ------------------------------------------------------------------
    # Construction / persistence
    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        baseline = cls()
        baseline._entries = _Multiset(f.baseline_key() for f in findings)
        return baseline

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        document = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(document, dict) or "findings" not in document:
            raise ValueError(f"{path}: not a lint baseline file")
        version = document.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{path}: baseline version {version!r} is not {BASELINE_VERSION} "
                "(regenerate with --write-baseline)"
            )
        return cls(document["findings"])

    def write(self, path: pathlib.Path) -> None:
        """Persist, sorted and pretty-printed so diffs review cleanly."""
        entries = [
            {"rule": rule, "path": file_path, "message": message}
            for (rule, file_path, message) in sorted(self._entries.elements())
        ]
        document = {"version": BASELINE_VERSION, "findings": entries}
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(self._entries.values())

    def filter(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int]:
        """Split ``findings`` into (fresh, absorbed-count).

        Each baseline entry absorbs at most as many findings as its
        recorded multiplicity; everything else is fresh and should fail
        the gate.
        """
        budget = _Multiset(self._entries)
        fresh: List[Finding] = []
        absorbed = 0
        for finding in findings:
            key = finding.baseline_key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                absorbed += 1
            else:
                fresh.append(finding)
        return fresh, absorbed
