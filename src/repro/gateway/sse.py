"""Server-Sent-Events framing (RFC-less but standard: whatwg HTML §9.2).

The gateway streams sweep progress as ``text/event-stream``: one frame
per event, ``id:`` carrying the gateway's per-sweep monotonic sequence
number (which doubles as the ``Last-Event-ID`` replay cursor on
reconnect), ``event:`` one of :data:`repro.gateway.routes.SSE_EVENTS`,
``data:`` a single JSON document.  Bridged :mod:`repro.obs` events keep
their original bus ``seq`` inside ``data`` — two monotonic sequences,
one per transport hop.

>>> format_sse(3, "progress", {"done": 2, "total": 8})
b'id: 3\\nevent: progress\\ndata: {"done": 2, "total": 8}\\n\\n'
>>> KEEPALIVE
b': keepalive\\n\\n'
"""

from __future__ import annotations

import json
from typing import Any

from repro import httpd

__all__ = ["CONTENT_TYPE", "KEEPALIVE", "format_sse", "stream_preamble"]

#: The event-stream media type browsers' ``EventSource`` expects.
CONTENT_TYPE = "text/event-stream; charset=utf-8"

#: Comment frame written on idle so intermediaries keep the stream alive.
KEEPALIVE = b": keepalive\n\n"


def format_sse(event_id: int, event: str, data: Any) -> bytes:
    """One complete SSE frame: ``id`` / ``event`` / one-line JSON ``data``."""
    payload = json.dumps(data, sort_keys=True)
    return f"id: {event_id}\nevent: {event}\ndata: {payload}\n\n".encode("utf-8")


def stream_preamble() -> bytes:
    """The response head that turns the connection into an event stream.

    No ``Content-Length`` — the stream ends when the server closes the
    connection (``Connection: close``, like every gateway response).

    >>> stream_preamble().startswith(b"HTTP/1.1 200 OK\\r\\n")
    True
    """
    head = httpd.render_response(200, b"", content_type=CONTENT_TYPE,
                                 extra_headers=(("Cache-Control", "no-store"),))
    # render_response stamps Content-Length: 0; strip it — the stream's
    # length is unknown by construction.
    return head.replace(b"Content-Length: 0\r\n", b"")
