"""Artifact object store: content-addressed result spill-out.

A sweep result above the gateway's ``--spill-bytes`` threshold does not
travel inline in the HTTP response; its canonical JSON encoding is
written to an :class:`ArtifactStore` and the REST API answers with a
content-addressed URL (``GET /v1/artifacts/{digest}``) instead.  The
digest is the SHA-256 of the stored bytes, so artifacts are immutable,
deduplicate across identical results, and any replica of a shared store
can serve any other replica's spill — the object store is the only
state the "stateless" gateway tier leans on.

:class:`LocalArtifactStore` is the filesystem backend (two-level fan-out
directories, atomic tmp-then-rename writes, exactly the layout of the
engine's :class:`~repro.runtime.cache.ArtifactCache`).  An S3-alike
would implement the same three methods.

>>> encode_result({"b": 1, "a": [2, 3]})
b'{"a": [2, 3], "b": 1}\\n'
>>> import hashlib
>>> hashlib.sha256(b"x").hexdigest() == digest_of(b"x")
True
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from typing import Any

__all__ = [
    "ArtifactStore",
    "ArtifactStoreError",
    "DIGEST_RE",
    "LocalArtifactStore",
    "digest_of",
    "encode_result",
]

#: Content addresses are lowercase SHA-256 hex, nothing else.
DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")


class ArtifactStoreError(RuntimeError):
    """The store could not persist or produce an artifact."""


def encode_result(payload: Any) -> bytes:
    """Canonical JSON encoding of a sweep result payload.

    Sorted keys and a trailing newline make the encoding deterministic:
    the same payload always yields the same bytes, hence the same
    digest — which is what makes spilled artifacts bit-comparable to a
    direct :class:`~repro.service.client.ServiceClient` result.
    """
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def digest_of(data: bytes) -> str:
    """The content address of ``data``: SHA-256 hex."""
    return hashlib.sha256(data).hexdigest()


class ArtifactStore:
    """Interface every artifact backend implements."""

    def put(self, data: bytes) -> str:
        """Persist ``data``; return its content digest.  Idempotent."""
        raise NotImplementedError

    def get(self, digest: str) -> bytes:
        """The stored bytes; :class:`KeyError` when absent."""
        raise NotImplementedError

    def stats(self) -> dict:
        """Backend counters for the status document."""
        raise NotImplementedError


class LocalArtifactStore(ArtifactStore):
    """Filesystem backend: ``root/<digest[:2]>/<digest>.bin``.

    Writes go through a temp file and :func:`os.replace` in the final
    directory, so a crashed gateway never leaves a torn artifact and
    concurrent replicas writing the same content race harmlessly.
    Directories are created lazily on first :meth:`put`; any OS-level
    failure surfaces as :class:`ArtifactStoreError` (which the gateway
    turns into a structured 500, never a stack trace on the wire).
    """

    def __init__(self, root: str):
        self.root = root
        self._puts = 0
        self._gets = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + ".bin")

    def put(self, data: bytes) -> str:
        digest = digest_of(data)
        path = self._path(digest)
        try:
            if os.path.exists(path):
                self._puts += 1
                return digest  # content-addressed: already stored
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError as error:
            raise ArtifactStoreError(
                f"artifact store write failed under {self.root!r}: {error}"
            ) from error
        self._puts += 1
        return digest

    def get(self, digest: str) -> bytes:
        if not DIGEST_RE.match(digest):
            raise KeyError(digest)
        try:
            with open(self._path(digest), "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise KeyError(digest) from None
        except OSError as error:
            raise ArtifactStoreError(
                f"artifact store read failed under {self.root!r}: {error}"
            ) from error
        self._gets += 1
        return data

    def stats(self) -> dict:
        return {"backend": "local", "root": self.root,
                "puts": self._puts, "gets": self._gets}
