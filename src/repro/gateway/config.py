"""Gateway configuration: one dataclass, CLI flags map onto its fields.

Every knob of the HTTP front door lives here so the server, the CLI and
the tests agree on defaults.  The gateway itself is stateless — N
replicas with the same configuration in front of one service are
interchangeable (see ``docs/gateway.md``) — so the configuration is the
*whole* of a replica's identity.

>>> config = GatewayConfig(service_host="127.0.0.1", service_port=7463)
>>> config.spill_bytes
65536
>>> config.webhook_attempts
3
"""

from __future__ import annotations

import dataclasses

__all__ = ["GatewayConfig"]


@dataclasses.dataclass
class GatewayConfig:
    """Everything a gateway replica needs to know.

    Attributes
    ----------
    service_host, service_port:
        The ``repro.service`` endpoint this replica fronts.
    host, port:
        Where the gateway itself listens (``port=0`` binds ephemeral).
    artifact_root:
        Directory of the local artifact store.  Results whose canonical
        JSON encoding exceeds ``spill_bytes`` are written here and served
        by content-addressed digest instead of inline in the response.
    spill_bytes:
        Inline-result size threshold in bytes.
    max_body_bytes:
        Hard bound on any request body; larger submits are refused 413.
    webhook_secret:
        HMAC-SHA256 key for the ``X-Repro-Signature`` header on
        completion webhooks.
    webhook_attempts:
        Total delivery attempts per webhook (first try + retries).
    webhook_backoff_seconds:
        Base of the exponential backoff between webhook attempts
        (``base * 2**attempt``, capped at ``webhook_backoff_cap_seconds``).
    sse_keepalive_seconds:
        Idle interval after which an SSE stream writes a ``:`` comment so
        intermediaries do not reap the connection.
    sse_history_frames:
        Per-sweep replay buffer depth for ``Last-Event-ID`` reconnects.
    watch_backoff_seconds:
        Pause before the watch-bridge reconnects after losing the
        service connection.
    connect_timeout_seconds:
        Retry-with-backoff budget when dialling the service.
    """

    service_host: str = "127.0.0.1"
    service_port: int = 0
    host: str = "127.0.0.1"
    port: int = 0
    artifact_root: str = "gateway-artifacts"
    spill_bytes: int = 65536
    max_body_bytes: int = 1_000_000
    webhook_secret: str = "repro-gateway"
    webhook_attempts: int = 3
    webhook_backoff_seconds: float = 0.25
    webhook_backoff_cap_seconds: float = 5.0
    sse_keepalive_seconds: float = 15.0
    sse_history_frames: int = 256
    watch_backoff_seconds: float = 0.5
    connect_timeout_seconds: float = 10.0

    def validate(self) -> "GatewayConfig":
        """Sanity-check field ranges; returns self for chaining.

        >>> GatewayConfig(spill_bytes=-1).validate()
        Traceback (most recent call last):
            ...
        ValueError: spill_bytes must be >= 0
        """
        if self.spill_bytes < 0:
            raise ValueError("spill_bytes must be >= 0")
        if self.max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be > 0")
        if self.webhook_attempts < 1:
            raise ValueError("webhook_attempts must be >= 1")
        if self.webhook_backoff_seconds < 0:
            raise ValueError("webhook_backoff_seconds must be >= 0")
        if self.sse_history_frames < 1:
            raise ValueError("sse_history_frames must be >= 1")
        return self
