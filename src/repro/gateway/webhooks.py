"""Completion webhooks: signed, retried, bounded.

A submit may register a callback URL; when the sweep reaches a terminal
state the gateway POSTs a JSON document there.  Delivery is best-effort
but principled:

* the body is signed — ``X-Repro-Signature: sha256=<hmac-hex>`` over the
  exact request bytes with the gateway's shared secret, so the receiver
  can authenticate the call without trusting the network
  (:func:`verify_signature` is the receiver-side check);
* failures retry with exponential backoff
  (``base * 2**attempt``, capped), a bounded number of attempts, and a
  ``X-Repro-Delivery-Attempt`` header so receivers can deduplicate;
* only ``http://`` URLs are dialled (the gateway carries no TLS stack);
  anything else fails fast as undeliverable.

>>> signature = sign_payload(b'{"state": "completed"}', "s3cret")
>>> signature.startswith("sha256=")
True
>>> verify_signature(b'{"state": "completed"}', "s3cret", signature)
True
>>> verify_signature(b'{"state": "tampered"}', "s3cret", signature)
False
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
from typing import Optional, Tuple
from urllib.parse import urlsplit

from repro import httpd, obs

__all__ = [
    "SIGNATURE_HEADER",
    "WebhookDeliverer",
    "sign_payload",
    "verify_signature",
]

#: The header carrying the HMAC of the request body.
SIGNATURE_HEADER = "X-Repro-Signature"

_DELIVERIES_TOTAL = obs.counter(
    "repro_gateway_webhook_deliveries_total",
    "Completion webhooks by final outcome (delivered / exhausted).",
    labels=("outcome",),
)
_ATTEMPTS_TOTAL = obs.counter(
    "repro_gateway_webhook_attempts_total",
    "Individual webhook POST attempts, including retries.",
)


def sign_payload(body: bytes, secret: str) -> str:
    """The ``X-Repro-Signature`` value for ``body``: ``sha256=<hmac-hex>``."""
    mac = hmac.new(secret.encode("utf-8"), body, hashlib.sha256)
    return "sha256=" + mac.hexdigest()


def verify_signature(body: bytes, secret: str, signature: str) -> bool:
    """Receiver-side check: constant-time compare against the header."""
    return hmac.compare_digest(sign_payload(body, secret), signature)


def _split_http_url(url: str) -> Tuple[str, int, str]:
    """``(host, port, path)`` of an ``http://`` URL; ValueError otherwise."""
    parts = urlsplit(url)
    if parts.scheme != "http" or not parts.hostname:
        raise ValueError(f"webhook URL must be http://HOST[:PORT]/PATH, got {url!r}")
    path = parts.path or "/"
    if parts.query:
        path = f"{path}?{parts.query}"
    return parts.hostname, parts.port or 80, path


class WebhookDeliverer:
    """POST signed payloads with bounded exponential-backoff retry."""

    def __init__(
        self,
        secret: str,
        attempts: int = 3,
        backoff_seconds: float = 0.25,
        backoff_cap_seconds: float = 5.0,
        request_timeout: float = 10.0,
    ):
        self.secret = secret
        self.attempts = max(1, attempts)
        self.backoff_seconds = backoff_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self.request_timeout = request_timeout

    async def deliver(self, url: str, body: bytes) -> bool:
        """Deliver ``body`` to ``url``; True when a 2xx came back in time.

        Every attempt is counted; the terminal outcome lands on
        ``repro_gateway_webhook_deliveries_total{outcome=...}``.
        """
        try:
            host, port, path = _split_http_url(url)
        except ValueError:
            _DELIVERIES_TOTAL.inc(outcome="exhausted")
            return False
        signature = sign_payload(body, self.secret)
        for attempt in range(self.attempts):
            if attempt:
                delay = min(
                    self.backoff_seconds * (2 ** (attempt - 1)),
                    self.backoff_cap_seconds,
                )
                await asyncio.sleep(delay)
            _ATTEMPTS_TOTAL.inc()
            status = await self._post_once(host, port, path, body, signature,
                                           attempt + 1)
            if status is not None and 200 <= status < 300:
                _DELIVERIES_TOTAL.inc(outcome="delivered")
                return True
        _DELIVERIES_TOTAL.inc(outcome="exhausted")
        return False

    async def _post_once(
        self, host: str, port: int, path: str, body: bytes,
        signature: str, attempt: int,
    ) -> Optional[int]:
        """One POST; the response status, or None on any transport failure."""
        try:
            return await asyncio.wait_for(
                self._post(host, port, path, body, signature, attempt),
                timeout=self.request_timeout,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError, httpd.HttpError):
            return None

    async def _post(
        self, host: str, port: int, path: str, body: bytes,
        signature: str, attempt: int,
    ) -> int:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            head = (
                f"POST {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Type: application/json; charset=utf-8\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{SIGNATURE_HEADER}: {signature}\r\n"
                f"X-Repro-Delivery-Attempt: {attempt}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1", "replace").split()
            if len(parts) < 2 or not parts[0].startswith("HTTP/"):
                raise httpd.HttpError(502, f"malformed webhook reply {status_line!r}")
            return int(parts[1])
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
