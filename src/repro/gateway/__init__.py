"""repro.gateway — the HTTP/SSE front door of the serving stack.

The fifth layer of the repository: browsers, curl and load balancers
speak HTTP, the sweep service speaks NDJSON-TCP, and this package is the
stateless translation tier between them.  One :class:`Gateway` replica
fronts one :class:`~repro.service.server.SweepService`; N replicas over
one service (and its engine + cluster) is the horizontal-scale story —
the service's single-flight dedup makes the replicas safely
interchangeable, and a shared artifact store lets any replica serve any
result.

The moving parts, one module each:

* :mod:`~repro.gateway.routes` — the REST route table and SSE event
  vocabulary (``REPRO-PROTO01``-linted like the TCP protocols);
* :mod:`~repro.gateway.sse` — Server-Sent-Events framing;
* :mod:`~repro.gateway.artifacts` — content-addressed result spill-out
  (:class:`ArtifactStore` interface + local filesystem backend);
* :mod:`~repro.gateway.webhooks` — HMAC-signed completion callbacks
  with bounded retry;
* :mod:`~repro.gateway.config` / :mod:`~repro.gateway.server` — the
  replica itself, shipped as ``python -m repro gateway``.

``docs/gateway.md`` is the wire-facing specification; shared HTTP/1.1
plumbing lives in :mod:`repro.httpd` (also used by the metrics
endpoint).
"""

from __future__ import annotations

from repro.gateway.artifacts import (
    ArtifactStore,
    ArtifactStoreError,
    LocalArtifactStore,
    digest_of,
    encode_result,
)
from repro.gateway.config import GatewayConfig
from repro.gateway.routes import ROUTES, SSE_EVENTS, match_route
from repro.gateway.server import SWEEP_STATES, Gateway
from repro.gateway.webhooks import (
    SIGNATURE_HEADER,
    WebhookDeliverer,
    sign_payload,
    verify_signature,
)

__all__ = [
    "ArtifactStore",
    "ArtifactStoreError",
    "Gateway",
    "GatewayConfig",
    "LocalArtifactStore",
    "ROUTES",
    "SIGNATURE_HEADER",
    "SSE_EVENTS",
    "SWEEP_STATES",
    "WebhookDeliverer",
    "digest_of",
    "encode_result",
    "match_route",
    "sign_payload",
    "verify_signature",
]
