"""The gateway's route table and SSE event vocabulary.

Like the TCP protocols' ``SERVICE_OPS`` / ``SERVICE_EVENTS`` tuples,
:data:`ROUTES` and :data:`SSE_EVENTS` are the gateway's *vocabulary*:
``docs/gateway.md`` documents every member (pinned by
``tests/test_docs.py``) and the ``REPRO-PROTO01`` lint rule pins every
route-shaped string literal and SSE event name in the package against
them, so a route can only be added here, in the docs, and in the code
together.

Routes are written as ``"METHOD /path"`` with ``{name}`` placeholders;
:func:`match_route` resolves a concrete request against the table.

>>> match_route("GET", "/v1/sweeps/sw-1a2b/result")
('GET /v1/sweeps/{id}/result', {'id': 'sw-1a2b'})
>>> match_route("GET", "/v1/nope") is None
True
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

__all__ = ["ROUTES", "SSE_EVENTS", "match_route"]

#: Every route the gateway serves, ``"METHOD /path"`` with placeholders.
ROUTES = (
    "POST /v1/sweeps",
    "GET /v1/sweeps/{id}",
    "GET /v1/sweeps/{id}/result",
    "GET /v1/sweeps/{id}/events",
    "DELETE /v1/sweeps/{id}",
    "GET /v1/artifacts/{digest}",
    "GET /healthz",
)

#: Every SSE event name the gateway's ``/events`` stream emits.
SSE_EVENTS = (
    "snapshot",  # stream-opening state of the sweep (and after replay gaps)
    "progress",  # one engine progress tick: done / total / label
    "obs",       # one bridged repro.obs event (bus seq preserved in data)
    "done",      # terminal state: completed / failed / cancelled
)

#: Placeholder values: one non-empty path segment.
_SEGMENT = r"[^/]+"


def _compile(route: str) -> Tuple[str, "re.Pattern[str]"]:
    method, _, path = route.partition(" ")
    pattern = re.sub(
        r"\{([a-z]+)\}", lambda m: f"(?P<{m.group(1)}>{_SEGMENT})", path
    )
    return method, re.compile(f"^{pattern}$")


_COMPILED = tuple((route, *_compile(route)) for route in ROUTES)


def match_route(method: str, path: str) -> Optional[Tuple[str, Dict[str, str]]]:
    """Resolve ``(method, path)`` to ``(route, placeholders)`` or ``None``.

    >>> match_route("POST", "/v1/sweeps")
    ('POST /v1/sweeps', {})
    >>> match_route("DELETE", "/v1/sweeps/abc")
    ('DELETE /v1/sweeps/{id}', {'id': 'abc'})
    """
    for route, route_method, pattern in _COMPILED:
        if route_method != method:
            continue
        found = pattern.match(path)
        if found is not None:
            return route, found.groupdict()
    return None


def allowed_methods(path: str) -> Tuple[str, ...]:
    """Methods the table accepts for ``path`` (for 405 Allow headers).

    >>> allowed_methods("/v1/sweeps/abc")
    ('GET', 'DELETE')
    """
    methods = []
    for _, route_method, pattern in _COMPILED:
        if pattern.match(path) and route_method not in methods:
            methods.append(route_method)
    return tuple(methods)
