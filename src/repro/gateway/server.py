"""The gateway server: REST + SSE front door over one ``repro.service``.

One :class:`Gateway` instance is one stateless replica.  Every request
arrives over plain HTTP/1.1 (:mod:`repro.httpd`), resolves against the
route table (:mod:`repro.gateway.routes`) and is served from three kinds
of machinery:

* **submits** open a dedicated :class:`~repro.service.client.ServiceClient`
  connection per sweep and run it as an asyncio task; the service's
  single-flight dedup means N replicas submitting the same work still
  compute it once;
* **event streams** fan frames out to per-subscriber queues with a
  per-sweep monotonic ``seq`` (the SSE ``id:``), replayable across
  reconnects via ``Last-Event-ID``; a dedicated ``watch`` connection
  bridges the service's :mod:`repro.obs` events into the streams of the
  sweeps they belong to, keyed by trace id;
* **results** above the spill threshold land in the
  :class:`~repro.gateway.artifacts.ArtifactStore` and are served
  content-addressed; completion webhooks go out signed with bounded
  retry (:mod:`repro.gateway.webhooks`).

The replica holds no durable state of its own — sweeps live in memory
for the lifetime of the process, artifacts in the (shareable) store,
truth in the service.  ``docs/gateway.md`` is the wire-facing spec.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
import uuid
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro import httpd, obs
from repro.gateway import sse
from repro.gateway.artifacts import (
    DIGEST_RE,
    ArtifactStore,
    ArtifactStoreError,
    LocalArtifactStore,
    encode_result,
)
from repro.gateway.config import GatewayConfig
from repro.gateway.routes import allowed_methods, match_route
from repro.gateway.webhooks import WebhookDeliverer
from repro.sched import SchedPolicy
from repro.service.client import (
    ServiceCancelledError,
    ServiceClient,
    ServiceError,
)

__all__ = ["Gateway", "SWEEP_STATES"]

#: Every lifecycle state a gateway-tracked sweep can be in.
SWEEP_STATES = ("running", "completed", "failed", "cancelled")

_REQUESTS_TOTAL = obs.counter(
    "repro_gateway_requests_total",
    "HTTP requests answered by the gateway, by route and status code.",
    labels=("route", "code"),
)
_REQUEST_SECONDS = obs.histogram(
    "repro_gateway_request_seconds",
    "Gateway request handling latency by route (SSE: stream lifetime).",
    labels=("route",),
)
_SWEEPS_TOTAL = obs.counter(
    "repro_gateway_sweeps_total",
    "Sweeps reaching a terminal state, by outcome.",
    labels=("outcome",),
)
_SWEEPS_INFLIGHT = obs.gauge(
    "repro_gateway_sweeps_inflight_total",
    "Sweeps currently running through this replica.",
)
_SSE_STREAMS_TOTAL = obs.counter(
    "repro_gateway_sse_streams_total",
    "SSE streams ended, by how (closed / disconnected).",
    labels=("outcome",),
)
_SSE_FRAMES_TOTAL = obs.counter(
    "repro_gateway_sse_frames_total",
    "SSE frames published to subscribers, by event name.",
    labels=("event",),
)
_SPILLS_TOTAL = obs.counter(
    "repro_gateway_artifact_spills_total",
    "Results spilled to the artifact store instead of travelling inline.",
)
_SPILLED_BYTES = obs.counter(
    "repro_gateway_artifact_spilled_bytes",
    "Total bytes written to the artifact store by result spills.",
)
_ARTIFACT_FETCHES_TOTAL = obs.counter(
    "repro_gateway_artifact_fetches_total",
    "GET /v1/artifacts requests, by status code.",
    labels=("code",),
)
_WATCH_EVENTS_TOTAL = obs.counter(
    "repro_gateway_watch_events_total",
    "Service observability events seen by the watch bridge.",
)


@dataclasses.dataclass
class SweepRecord:
    """Everything this replica knows about one submitted sweep."""

    sweep_id: str
    workload: str
    params: Dict[str, Any]
    webhook_url: str = ""
    #: Scheduling tag (wire shape, ``{"class": ..., "priority": ...}``)
    #: the sweep was submitted with; ``None`` = untagged batch default.
    sched: Optional[Dict[str, Any]] = None
    state: str = "running"
    key: str = ""
    deduplicated: bool = False
    trace: str = ""
    done: int = 0
    total: int = 0
    label: str = ""
    progress_events: int = 0
    elapsed_seconds: float = 0.0
    error: str = ""
    error_code: str = ""
    payload: Any = None
    payload_inline: bool = False
    artifact_digest: str = ""
    result_bytes: int = 0
    webhook_delivered: Optional[bool] = None
    seq: int = 0
    history: Deque[Tuple[int, str, Any]] = dataclasses.field(
        default_factory=deque
    )
    subscribers: List["asyncio.Queue[Tuple[int, str, Any]]"] = dataclasses.field(
        default_factory=list
    )
    client: Optional[ServiceClient] = None
    task: Optional[asyncio.Task] = None
    finished: asyncio.Event = dataclasses.field(default_factory=asyncio.Event)


class Gateway:
    """One stateless HTTP/SSE replica in front of one sweep service."""

    def __init__(self, config: GatewayConfig, store: Optional[ArtifactStore] = None):
        self.config = config.validate()
        self.store: ArtifactStore = (
            store if store is not None else LocalArtifactStore(config.artifact_root)
        )
        self.webhooks = WebhookDeliverer(
            secret=config.webhook_secret,
            attempts=config.webhook_attempts,
            backoff_seconds=config.webhook_backoff_seconds,
            backoff_cap_seconds=config.webhook_backoff_cap_seconds,
        )
        self._sweeps: Dict[str, SweepRecord] = {}
        self._by_trace: Dict[str, SweepRecord] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._watch_task: Optional[asyncio.Task] = None
        self._background: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return self.config.port

    async def start(self) -> "Gateway":
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self.config.port = self._server.sockets[0].getsockname()[1]
        self._watch_task = asyncio.create_task(self._watch_loop())
        return self

    async def stop(self) -> None:
        if self._watch_task is not None:
            self._watch_task.cancel()
            try:
                await self._watch_task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass  # repro: ignore[REPRO-ERR01] -- shutdown path: the bridge was told to stop; its death rattle carries no information
            self._watch_task = None
        for task in list(self._background):
            task.cancel()
        if self._background:
            await asyncio.gather(*self._background, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _track(self, task: asyncio.Task) -> None:
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    # ------------------------------------------------------------------
    # Event fan-out
    # ------------------------------------------------------------------
    def _publish(self, record: SweepRecord, event: str, data: Any) -> None:
        record.seq += 1
        frame = (record.seq, event, data)
        record.history.append(frame)
        while len(record.history) > self.config.sse_history_frames:
            record.history.popleft()
        _SSE_FRAMES_TOTAL.inc(event=event)
        for queue in list(record.subscribers):
            queue.put_nowait(frame)

    # ------------------------------------------------------------------
    # Sweep execution
    # ------------------------------------------------------------------
    async def _run_sweep(self, record: SweepRecord, trace: Optional[str]) -> None:
        _SWEEPS_INFLIGHT.inc()
        client = ServiceClient(self.config.service_host, self.config.service_port)
        record.client = client

        def accepted(key: str, deduplicated: bool, served_trace: str) -> None:
            record.key = key
            record.deduplicated = deduplicated
            record.trace = served_trace
            if served_trace:
                self._by_trace[served_trace] = record

        def progress(done: int, total: int, label: str) -> None:
            record.done, record.total, record.label = done, total, label
            record.progress_events += 1
            self._publish(
                record, "progress", {"done": done, "total": total, "label": label}
            )

        try:
            await client.connect(timeout=self.config.connect_timeout_seconds)
            result = await client.submit(
                record.workload,
                record.params,
                on_progress=progress,
                trace=trace,
                sched=record.sched,
                on_accepted=accepted,
            )
            record.elapsed_seconds = result.elapsed_seconds
            record.trace = result.trace or record.trace
            data = encode_result(result.payload)
            record.result_bytes = len(data)
            if len(data) > self.config.spill_bytes:
                record.artifact_digest = self.store.put(data)
                _SPILLS_TOTAL.inc()
                _SPILLED_BYTES.inc(len(data))
            else:
                record.payload = result.payload
                record.payload_inline = True
            record.state = "completed"
        except ServiceCancelledError as error:
            record.state = "cancelled"
            record.error, record.error_code = str(error), "cancelled"
        except ArtifactStoreError as error:
            record.state = "failed"
            record.error, record.error_code = str(error), "artifact-store"
        except ServiceError as error:
            record.state = "failed"
            record.error, record.error_code = str(error), error.code
        except (ConnectionError, OSError, asyncio.TimeoutError) as error:
            record.state = "failed"
            record.error = f"service unreachable: {error}"
            record.error_code = "service-unreachable"
        except asyncio.CancelledError:
            record.state = "cancelled"
            record.error, record.error_code = "cancelled by gateway", "cancelled"
        finally:
            await client.aclose()
            record.client = None
            if record.trace:
                self._by_trace.pop(record.trace, None)
            _SWEEPS_INFLIGHT.inc(-1)
            _SWEEPS_TOTAL.inc(outcome=record.state)
            self._publish(record, "done", self._terminal_document(record))
            record.finished.set()
            if record.webhook_url:
                task = asyncio.ensure_future(self._deliver_webhook(record))
                self._track(task)

    async def _deliver_webhook(self, record: SweepRecord) -> None:
        body = encode_result(self._terminal_document(record))
        record.webhook_delivered = await self.webhooks.deliver(
            record.webhook_url, body
        )

    async def _watch_loop(self) -> None:
        """Bridge the service's obs event stream into SSE subscribers."""
        while True:
            client = ServiceClient(self.config.service_host, self.config.service_port)
            try:
                await client.connect(timeout=self.config.connect_timeout_seconds)
                async for event in client.watch():
                    _WATCH_EVENTS_TOTAL.inc()
                    record = self._by_trace.get(str(event.get("trace") or ""))
                    if record is not None and record.state == "running":
                        self._publish(record, "obs", event)
            except (ConnectionError, OSError, asyncio.TimeoutError, ServiceError):
                pass
            finally:
                await client.aclose()
            await asyncio.sleep(self.config.watch_backoff_seconds)

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def _status_document(self, record: SweepRecord) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "id": record.sweep_id,
            "state": record.state,
            "workload": record.workload,
            "key": record.key,
            "trace": record.trace,
            "deduplicated": record.deduplicated,
            "sched": record.sched,
            "progress": {
                "done": record.done,
                "total": record.total,
                "label": record.label,
                "events": record.progress_events,
            },
            "seq": record.seq,
            "links": {
                "self": f"/v1/sweeps/{record.sweep_id}",
                "result": f"/v1/sweeps/{record.sweep_id}/result",
                "events": f"/v1/sweeps/{record.sweep_id}/events",
            },
        }
        if record.state != "running":
            document.update(self._terminal_document(record))
        return document

    def _terminal_document(self, record: SweepRecord) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "id": record.sweep_id,
            "state": record.state,
            "workload": record.workload,
            "key": record.key,
            "trace": record.trace,
            "deduplicated": record.deduplicated,
            "elapsed_seconds": record.elapsed_seconds,
            "progress_events": record.progress_events,
            "result_bytes": record.result_bytes,
            "result_url": f"/v1/sweeps/{record.sweep_id}/result",
        }
        if record.artifact_digest:
            document["artifact"] = record.artifact_digest
            document["artifact_url"] = f"/v1/artifacts/{record.artifact_digest}"
        if record.error:
            document["error"] = record.error
            document["error_code"] = record.error_code
        return document

    # ------------------------------------------------------------------
    # HTTP dispatch
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.monotonic()
        route_label, code = "unmatched", 0
        try:
            try:
                request = await httpd.read_request(
                    reader, max_body_bytes=self.config.max_body_bytes
                )
            except httpd.HttpError as error:
                code = error.status
                writer.write(httpd.error_response(error.status, str(error)))
                await writer.drain()
                return
            if request is None:
                return
            matched = match_route(request.method, request.path)
            if matched is None:
                allowed = allowed_methods(request.path)
                if allowed:
                    code = 405
                    writer.write(
                        httpd.render_response(
                            405,
                            httpd.error_body(405, "method not allowed"),
                            extra_headers=(("Allow", ", ".join(allowed)),),
                        )
                    )
                else:
                    code = 404
                    writer.write(
                        httpd.error_response(404, "no such route", code="not-found")
                    )
                await writer.drain()
                return
            route, placeholders = matched
            route_label = route
            if route == "GET /v1/sweeps/{id}/events":
                code = await self._serve_events(
                    reader, writer, request, placeholders["id"]
                )
                return
            try:
                code, response = self._dispatch(route, placeholders, request)
            except httpd.HttpError as error:
                code = error.status
                response = httpd.error_response(error.status, str(error))
            writer.write(response)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            code = code or 499
        finally:
            if code:
                _REQUESTS_TOTAL.inc(route=route_label, code=str(code))
                _REQUEST_SECONDS.observe(
                    time.monotonic() - started, route=route_label
                )
            try:
                writer.close()
            except Exception:  # repro: ignore[REPRO-ERR01] -- closing an already-broken client socket has nothing left to report
                pass

    def _dispatch(
        self, route: str, placeholders: Dict[str, str], request: httpd.HttpRequest
    ) -> Tuple[int, bytes]:
        if route == "GET /healthz":
            return 200, httpd.json_response(
                200,
                {
                    "status": "ok",
                    "service": f"{self.config.service_host}:{self.config.service_port}",
                    "sweeps": len(self._sweeps),
                    "artifact_store": self.store.stats(),
                },
            )
        if route == "POST /v1/sweeps":
            return self._submit(request)
        if route == "GET /v1/artifacts/{digest}":
            return self._artifact(placeholders["digest"])
        record = self._sweeps.get(placeholders["id"])
        if record is None:
            return 404, httpd.error_response(404, "no such sweep", code="not-found")
        if route == "GET /v1/sweeps/{id}":
            return 200, httpd.json_response(200, self._status_document(record))
        if route == "GET /v1/sweeps/{id}/result":
            return self._result(record)
        if route == "DELETE /v1/sweeps/{id}":
            return self._cancel(record)
        return 500, httpd.error_response(500, f"unhandled route {route}")

    def _submit(self, request: httpd.HttpRequest) -> Tuple[int, bytes]:
        document = request.json()  # HttpError(400) propagates to _handle
        if not isinstance(document, dict):
            raise httpd.HttpError(400, "submit body must be a JSON object")
        workload = document.get("workload")
        if not isinstance(workload, str) or not workload:
            raise httpd.HttpError(400, "submit requires a non-empty 'workload'")
        params = document.get("params") or {}
        if not isinstance(params, dict):
            raise httpd.HttpError(400, "'params' must be a JSON object")
        webhook_url = document.get("webhook_url") or ""
        if not isinstance(webhook_url, str):
            raise httpd.HttpError(400, "'webhook_url' must be a string")
        trace = document.get("trace")
        if trace is not None and not isinstance(trace, str):
            raise httpd.HttpError(400, "'trace' must be a string")
        try:
            sched_policy = SchedPolicy.parse(document.get("sched"))
        except ValueError as error:
            raise httpd.HttpError(400, f"'sched' invalid: {error}")
        sweep_id = f"sw-{uuid.uuid4().hex[:12]}"
        record = SweepRecord(
            sweep_id=sweep_id,
            workload=workload,
            params=params,
            webhook_url=webhook_url,
            sched=sched_policy.to_dict() if document.get("sched") is not None else None,
        )
        self._sweeps[sweep_id] = record
        record.task = asyncio.ensure_future(self._run_sweep(record, trace))
        self._track(record.task)
        return 202, httpd.json_response(202, self._status_document(record))

    def _result(self, record: SweepRecord) -> Tuple[int, bytes]:
        if record.state == "running":
            return 202, httpd.json_response(202, self._status_document(record))
        if record.state == "cancelled":
            return 409, httpd.error_response(
                409, record.error or "sweep was cancelled", code="cancelled"
            )
        if record.state == "failed":
            return 500, httpd.error_response(
                500, record.error or "sweep failed", code=record.error_code or "failed"
            )
        if record.artifact_digest:
            location = f"/v1/artifacts/{record.artifact_digest}"
            body = encode_result(
                {"artifact": record.artifact_digest, "location": location}
            )
            return 307, httpd.render_response(
                307, body, extra_headers=(("Location", location),)
            )
        return 200, httpd.render_response(200, encode_result(record.payload))

    def _cancel(self, record: SweepRecord) -> Tuple[int, bytes]:
        if record.state != "running":
            return 409, httpd.error_response(
                409, f"sweep is already {record.state}", code="conflict"
            )
        client = record.client
        if client is not None:
            task = asyncio.ensure_future(self._request_cancel(client, record))
            self._track(task)
        elif record.task is not None:
            record.task.cancel()
        return 202, httpd.json_response(
            202, {"id": record.sweep_id, "state": "cancelling"}
        )

    @staticmethod
    async def _request_cancel(client: ServiceClient, record: SweepRecord) -> None:
        try:
            requested = await client.cancel()
        except (ConnectionError, OSError, RuntimeError):
            requested = False
        if not requested and record.task is not None and record.state == "running":
            record.task.cancel()

    def _artifact(self, digest: str) -> Tuple[int, bytes]:
        try:
            if not DIGEST_RE.match(digest):
                raise KeyError(digest)
            data = self.store.get(digest)
        except KeyError:
            _ARTIFACT_FETCHES_TOTAL.inc(code="404")
            return 404, httpd.error_response(
                404, "no such artifact", code="not-found"
            )
        except ArtifactStoreError as error:
            _ARTIFACT_FETCHES_TOTAL.inc(code="500")
            return 500, httpd.error_response(500, str(error), code="artifact-store")
        _ARTIFACT_FETCHES_TOTAL.inc(code="200")
        return 200, httpd.render_response(
            200, data, content_type="application/octet-stream",
            extra_headers=(("X-Repro-Digest", digest),),
        )

    # ------------------------------------------------------------------
    # SSE streaming
    # ------------------------------------------------------------------
    async def _serve_events(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request: httpd.HttpRequest,
        sweep_id: str,
    ) -> int:
        record = self._sweeps.get(sweep_id)
        if record is None:
            writer.write(httpd.error_response(404, "no such sweep", code="not-found"))
            await writer.drain()
            return 404
        cursor = self._replay_cursor(request, record)
        queue: "asyncio.Queue[Tuple[int, str, Any]]" = asyncio.Queue()
        record.subscribers.append(queue)
        outcome = "closed"
        disconnect = asyncio.ensure_future(reader.read(1))
        try:
            writer.write(sse.stream_preamble())
            terminal_sent = False
            if cursor is None:
                # Fresh subscriber (or a reconnect we cannot replay): one
                # snapshot of current state, then live frames only.
                writer.write(
                    sse.format_sse(record.seq, "snapshot",
                                   self._status_document(record))
                )
                terminal_sent = record.state != "running"
            else:
                for seq, event, data in list(record.history):
                    if seq > cursor:
                        writer.write(sse.format_sse(seq, event, data))
                        terminal_sent = terminal_sent or event == "done"
            await writer.drain()
            while not terminal_sent:
                getter = asyncio.ensure_future(queue.get())
                finished, _ = await asyncio.wait(
                    {getter, disconnect},
                    timeout=self.config.sse_keepalive_seconds,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if disconnect in finished:
                    getter.cancel()
                    outcome = "disconnected"
                    break
                if getter not in finished:
                    getter.cancel()
                    writer.write(sse.KEEPALIVE)
                    await writer.drain()
                    continue
                seq, event, data = await getter  # already done: instant
                writer.write(sse.format_sse(seq, event, data))
                await writer.drain()
                terminal_sent = event == "done"
        except (ConnectionError, OSError, asyncio.TimeoutError):
            outcome = "disconnected"
        finally:
            disconnect.cancel()
            try:
                record.subscribers.remove(queue)
            except ValueError:
                pass
            _SSE_STREAMS_TOTAL.inc(outcome=outcome)
        return 200

    @staticmethod
    def _replay_cursor(
        request: httpd.HttpRequest, record: SweepRecord
    ) -> Optional[int]:
        """Sequence number to resume after, when replay is possible."""
        raw = request.headers.get("last-event-id")
        if raw is None:
            return None
        try:
            cursor = int(raw)
        except ValueError:
            return None
        oldest = record.history[0][0] if record.history else record.seq + 1
        if cursor < oldest - 1:
            return None  # the window has moved past the cursor: resync
        return cursor
