"""Unit tests for the alpha-power-law MOSFET model."""

import numpy as np
import pytest

from repro.circuits.conditions import OperatingConditions
from repro.circuits.mosfet import (
    NmosDevice,
    access_device,
    corner_description,
    drain_current_from_parameters,
    pulldown_device,
    saturation_voltage,
)
from repro.circuits.technology import ProcessCorner, tsmc65_like


@pytest.fixture(scope="module")
def device():
    return access_device(tsmc65_like())


@pytest.fixture(scope="module")
def conditions():
    return OperatingConditions.nominal(tsmc65_like())


class TestDrainCurrent:
    def test_current_increases_with_gate_voltage(self, device, conditions):
        gate_voltages = np.linspace(0.3, 1.0, 10)
        currents = device.drain_current(gate_voltages, 0.8, conditions)
        assert np.all(np.diff(currents) > 0.0)

    def test_current_increases_with_drain_voltage_in_triode(self, device, conditions):
        drain_voltages = np.linspace(0.01, 0.2, 8)
        currents = device.drain_current(0.9, drain_voltages, conditions)
        assert np.all(np.diff(currents) > 0.0)

    def test_saturation_current_nearly_flat(self, device, conditions):
        params = device.parameters(conditions)
        vdsat = float(saturation_voltage(0.9 - params.threshold_voltage, params.alpha))
        low = float(device.drain_current(0.9, vdsat * 1.1, conditions))
        high = float(device.drain_current(0.9, vdsat * 2.0, conditions))
        # Only channel-length modulation separates the two points.
        assert high > low
        assert high < low * 1.2

    def test_subthreshold_current_is_small_but_positive(self, device, conditions):
        params = device.parameters(conditions)
        below = float(device.drain_current(params.threshold_voltage - 0.1, 0.8, conditions))
        above = float(device.drain_current(params.threshold_voltage + 0.2, 0.8, conditions))
        assert 0.0 < below < above / 20.0

    def test_zero_drain_voltage_gives_zero_current(self, device, conditions):
        assert float(device.drain_current(1.0, 0.0, conditions)) == pytest.approx(0.0, abs=1e-15)

    def test_current_never_negative(self, device, conditions):
        gate = np.linspace(0.0, 1.1, 12)[:, None]
        drain = np.linspace(0.0, 1.1, 12)[None, :]
        currents = device.drain_current(gate, drain, conditions)
        assert np.all(currents >= 0.0)

    def test_broadcasting_shapes(self, device, conditions):
        currents = device.drain_current(np.ones((3, 1)), np.ones((1, 4)) * 0.5, conditions)
        assert currents.shape == (3, 4)


class TestPvtDependence:
    def test_fast_corner_gives_more_current(self, device):
        tech = tsmc65_like()
        nominal = OperatingConditions.nominal(tech)
        fast = nominal.with_corner(ProcessCorner.FAST)
        slow = nominal.with_corner(ProcessCorner.SLOW)
        i_fast = float(device.drain_current(0.8, 0.8, fast))
        i_nom = float(device.drain_current(0.8, 0.8, nominal))
        i_slow = float(device.drain_current(0.8, 0.8, slow))
        assert i_fast > i_nom > i_slow

    def test_heating_reduces_strong_inversion_current(self, device):
        tech = tsmc65_like()
        nominal = OperatingConditions.nominal(tech)
        hot = nominal.with_temperature(350.0)
        # At high overdrive, mobility degradation dominates the Vth drop.
        assert float(device.drain_current(1.0, 0.8, hot)) < float(
            device.drain_current(1.0, 0.8, nominal)
        )

    def test_mismatch_offsets_shift_current(self):
        tech = tsmc65_like()
        conditions = OperatingConditions.nominal(tech)
        nominal_device = NmosDevice(tech, 120e-9, 65e-9)
        slow_device = NmosDevice(tech, 120e-9, 65e-9, vth_offset=+0.05)
        strong_device = NmosDevice(tech, 120e-9, 65e-9, gain_offset=+0.2)
        i_nom = float(nominal_device.drain_current(0.8, 0.8, conditions))
        assert float(slow_device.drain_current(0.8, 0.8, conditions)) < i_nom
        assert float(strong_device.drain_current(0.8, 0.8, conditions)) > i_nom


class TestHelpers:
    def test_saturation_voltage_square_law_limit(self):
        assert float(saturation_voltage(0.5, 2.0)) == pytest.approx(0.5)

    def test_saturation_voltage_clamps_negative_overdrive(self):
        assert float(saturation_voltage(-0.2, 1.3)) == pytest.approx(0.0)

    def test_device_factories_use_card_geometry(self):
        tech = tsmc65_like()
        access = access_device(tech)
        pulldown = pulldown_device(tech)
        assert access.width == pytest.approx(tech.access_width)
        assert pulldown.width == pytest.approx(tech.pulldown_width)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            NmosDevice(tsmc65_like(), width=0.0, length=65e-9)

    def test_corner_description_strings(self):
        assert "fast" in corner_description(ProcessCorner.FAST)
        assert "slow" in corner_description(ProcessCorner.SLOW)
        assert corner_description(ProcessCorner.TYPICAL) == "typical"

    def test_parameters_from_conditions(self, device, conditions):
        params = device.parameters(conditions)
        assert params.gain > 0.0
        assert params.thermal_voltage == pytest.approx(0.0259, rel=0.05)
        direct = drain_current_from_parameters(params, 0.9, 0.5)
        via_device = device.drain_current(0.9, 0.5, conditions)
        assert float(direct) == pytest.approx(float(via_device))
