"""Tests for the DNN layer library, including numerical gradient checks."""

import numpy as np
import pytest

from repro.dnn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    GlobalAveragePool,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    im2col,
)


def numerical_gradient(function, values, epsilon=1e-3):
    """Central-difference gradient of a scalar function of an array."""
    gradient = np.zeros_like(values, dtype=np.float64)
    flat = values.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function(values)
        flat[index] = original - epsilon
        lower = function(values)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * epsilon)
    return gradient


class TestDense:
    def test_forward_shape(self):
        layer = Dense(8, 3)
        output = layer.forward(np.random.default_rng(0).normal(size=(5, 8)).astype(np.float32))
        assert output.shape == (5, 3)

    def test_wrong_input_shape_rejected(self):
        with pytest.raises(ValueError):
            Dense(8, 3).forward(np.zeros((5, 4), dtype=np.float32))

    def test_gradient_check_inputs(self):
        rng = np.random.default_rng(1)
        layer = Dense(6, 4, rng=rng)
        inputs = rng.normal(size=(3, 6)).astype(np.float32)
        grad_out = rng.normal(size=(3, 4)).astype(np.float32)

        def loss(values):
            return float(np.sum(layer.forward(values.astype(np.float32)) * grad_out))

        layer.forward(inputs, training=True)
        analytic = layer.backward(grad_out)
        numeric = numerical_gradient(loss, inputs.astype(np.float64).copy())
        assert np.allclose(analytic, numeric, atol=1e-2)

    def test_gradient_check_weights(self):
        rng = np.random.default_rng(2)
        layer = Dense(5, 3, rng=rng)
        inputs = rng.normal(size=(4, 5)).astype(np.float32)
        grad_out = rng.normal(size=(4, 3)).astype(np.float32)
        layer.forward(inputs, training=True)
        layer.backward(grad_out)
        analytic = layer.weight.grad.copy()

        def loss(weights):
            original = layer.weight.value.copy()
            layer.weight.value = weights.astype(np.float32)
            value = float(np.sum(layer.forward(inputs) * grad_out))
            layer.weight.value = original
            return value

        numeric = numerical_gradient(loss, layer.weight.value.astype(np.float64).copy())
        assert np.allclose(analytic, numeric, atol=1e-2)

    def test_multiplication_count(self):
        assert Dense(10, 4).multiplication_count((10,)) == 40


class TestConv2D:
    def test_forward_shape_same_padding(self):
        layer = Conv2D(3, 8, kernel=3)
        output = layer.forward(np.zeros((2, 8, 8, 3), dtype=np.float32))
        assert output.shape == (2, 8, 8, 8)

    def test_forward_matches_manual_convolution(self):
        rng = np.random.default_rng(3)
        layer = Conv2D(1, 1, kernel=3, rng=rng)
        image = rng.normal(size=(1, 5, 5, 1)).astype(np.float32)
        output = layer.forward(image)
        kernel = layer.weight.value.reshape(3, 3)
        padded = np.pad(image[0, :, :, 0], 1)
        expected_center = float(np.sum(padded[3:6, 3:6] * kernel) + layer.bias.value[0])
        assert float(output[0, 3, 3, 0]) == pytest.approx(expected_center, abs=1e-5)

    def test_gradient_check_inputs(self):
        rng = np.random.default_rng(4)
        layer = Conv2D(2, 3, kernel=3, rng=rng)
        inputs = rng.normal(size=(2, 4, 4, 2)).astype(np.float32)
        grad_out = rng.normal(size=(2, 4, 4, 3)).astype(np.float32)

        def loss(values):
            return float(np.sum(layer.forward(values.astype(np.float32)) * grad_out))

        layer.forward(inputs, training=True)
        analytic = layer.backward(grad_out)
        numeric = numerical_gradient(loss, inputs.astype(np.float64).copy())
        assert np.allclose(analytic, numeric, atol=2e-2)

    def test_stride_two_halves_spatial_size(self):
        layer = Conv2D(3, 4, kernel=3, stride=2)
        output = layer.forward(np.zeros((1, 8, 8, 3), dtype=np.float32))
        assert output.shape == (1, 4, 4, 4)
        assert layer.output_shape((8, 8, 3)) == (4, 4, 4)

    def test_multiplication_count(self):
        layer = Conv2D(3, 8, kernel=3)
        assert layer.multiplication_count((8, 8, 3)) == 8 * 8 * 9 * 3 * 8

    def test_im2col_shape(self):
        patches, out_h, out_w = im2col(np.zeros((2, 6, 6, 3), dtype=np.float32), 3, 1, 1)
        assert (out_h, out_w) == (6, 6)
        assert patches.shape == (2 * 36, 27)


class TestActivationsAndNorm:
    def test_relu(self):
        layer = ReLU()
        inputs = np.array([[-1.0, 2.0]], dtype=np.float32)
        assert np.allclose(layer.forward(inputs, training=True), [[0.0, 2.0]])
        assert np.allclose(layer.backward(np.ones((1, 2), dtype=np.float32)), [[0.0, 1.0]])

    def test_batchnorm_normalises_in_training(self):
        rng = np.random.default_rng(5)
        layer = BatchNorm(4)
        inputs = rng.normal(3.0, 2.0, size=(64, 4)).astype(np.float32)
        outputs = layer.forward(inputs, training=True)
        assert np.allclose(outputs.mean(axis=0), 0.0, atol=1e-4)
        assert np.allclose(outputs.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_inference_uses_running_stats(self):
        rng = np.random.default_rng(6)
        layer = BatchNorm(2, momentum=0.5)
        for _ in range(20):
            layer.forward(rng.normal(1.0, 1.0, size=(32, 2)).astype(np.float32), training=True)
        outputs = layer.forward(np.ones((4, 2), dtype=np.float32), training=False)
        assert np.all(np.isfinite(outputs))

    def test_batchnorm_gradient_check(self):
        rng = np.random.default_rng(7)
        layer = BatchNorm(3)
        inputs = rng.normal(size=(8, 3)).astype(np.float32)
        grad_out = rng.normal(size=(8, 3)).astype(np.float32)

        def loss(values):
            return float(np.sum(layer.forward(values.astype(np.float32), training=True) * grad_out))

        layer.forward(inputs, training=True)
        analytic = layer.backward(grad_out)
        numeric = numerical_gradient(loss, inputs.astype(np.float64).copy())
        assert np.allclose(analytic, numeric, atol=2e-2)

    def test_effective_scale_shift(self):
        layer = BatchNorm(2)
        scale, shift = layer.effective_scale_shift()
        assert scale.shape == (2,)
        assert shift.shape == (2,)


class TestPoolingAndReshaping:
    def test_maxpool_forward_and_backward(self):
        layer = MaxPool2D(2)
        inputs = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        output = layer.forward(inputs, training=True)
        assert output.shape == (1, 2, 2, 1)
        assert float(output[0, 0, 0, 0]) == 5.0
        grad = layer.backward(np.ones_like(output))
        assert grad.shape == inputs.shape
        assert float(grad.sum()) == pytest.approx(4.0)

    def test_maxpool_rejects_odd_sizes(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.zeros((1, 5, 5, 1), dtype=np.float32))

    def test_global_average_pool(self):
        layer = GlobalAveragePool()
        inputs = np.ones((2, 4, 4, 3), dtype=np.float32) * 2.0
        output = layer.forward(inputs, training=True)
        assert output.shape == (2, 3)
        assert np.allclose(output, 2.0)
        grad = layer.backward(np.ones((2, 3), dtype=np.float32))
        assert np.allclose(grad, 1.0 / 16.0)

    def test_flatten_roundtrip(self):
        layer = Flatten()
        inputs = np.arange(24, dtype=np.float32).reshape(2, 2, 2, 3)
        output = layer.forward(inputs, training=True)
        assert output.shape == (2, 12)
        assert layer.backward(output).shape == inputs.shape


class TestResidualBlock:
    def test_identity_block_shapes(self):
        block = ResidualBlock(4, 4)
        inputs = np.random.default_rng(8).normal(size=(2, 8, 8, 4)).astype(np.float32)
        output = block.forward(inputs, training=True)
        assert output.shape == inputs.shape
        grad = block.backward(np.ones_like(output))
        assert grad.shape == inputs.shape
        assert block.projection is None

    def test_projection_block_changes_channels_and_stride(self):
        block = ResidualBlock(4, 8, stride=2)
        inputs = np.zeros((1, 8, 8, 4), dtype=np.float32)
        output = block.forward(inputs, training=True)
        assert output.shape == (1, 4, 4, 8)
        assert block.projection is not None
        assert block.output_shape((8, 8, 4)) == (4, 4, 8)

    def test_parameters_and_multiplications(self):
        block = ResidualBlock(4, 8, stride=2)
        assert len(block.parameters()) == 10  # 3 convs * 2 + 2 bn * 2
        assert block.multiplication_count((8, 8, 4)) > 0
