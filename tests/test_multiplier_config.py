"""Tests for the multiplier configuration container."""

import pytest

from repro.multiplier.config import (
    MultiplierConfig,
    paper_corner_fom,
    paper_corner_power,
    paper_corner_variation,
)


class TestMultiplierConfig:
    def test_defaults_are_valid(self):
        config = MultiplierConfig()
        assert config.bits == 4
        assert config.max_operand == 15
        assert config.product_levels == 225

    def test_discharge_times_are_bit_weighted(self):
        config = MultiplierConfig(tau0=0.2e-9)
        times = config.discharge_times()
        assert len(times) == 4
        assert times[0] == pytest.approx(0.2e-9)
        assert times[3] == pytest.approx(1.6e-9)
        assert config.max_discharge_time == pytest.approx(1.6e-9)

    def test_operating_frequency_near_paper_value(self):
        """The paper quotes ~167 MHz for the fom corner's tau0."""
        config = MultiplierConfig(tau0=0.16e-9)
        assert 120e6 < config.operating_frequency < 260e6

    def test_larger_tau0_lowers_frequency(self):
        fast = MultiplierConfig(tau0=0.16e-9)
        slow = MultiplierConfig(tau0=0.25e-9)
        assert slow.operating_frequency < fast.operating_frequency

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiplierConfig(tau0=-1e-9)
        with pytest.raises(ValueError):
            MultiplierConfig(bits=0)
        with pytest.raises(ValueError):
            MultiplierConfig(v_dac_zero=0.8, v_dac_full_scale=0.7)
        with pytest.raises(ValueError):
            MultiplierConfig(adc_lsb_voltage=0.0)
        with pytest.raises(ValueError):
            MultiplierConfig(dac_nonlinear_exponent=0.0)

    def test_renamed(self):
        config = MultiplierConfig(name="a").renamed("b")
        assert config.name == "b"

    def test_dict_roundtrip(self):
        config = MultiplierConfig(tau0=0.22e-9, v_dac_zero=0.35, name="roundtrip")
        clone = MultiplierConfig.from_dict(config.to_dict())
        assert clone == config

    def test_describe_contains_parameters(self):
        text = MultiplierConfig(name="fom").describe()
        assert "fom" in text
        assert "ns" in text


class TestPaperCorners:
    def test_paper_corner_parameters(self):
        fom = paper_corner_fom()
        power = paper_corner_power()
        variation = paper_corner_variation()
        assert fom.tau0 == pytest.approx(0.16e-9)
        assert fom.v_dac_full_scale == pytest.approx(1.0)
        assert power.v_dac_full_scale == pytest.approx(0.7)
        assert variation.tau0 == pytest.approx(0.24e-9)
        assert variation.v_dac_zero == pytest.approx(0.4)

    def test_paper_corner_names(self):
        assert paper_corner_fom().name == "fom"
        assert paper_corner_power().name == "power"
        assert paper_corner_variation().name == "variation"
