"""Tests for the per-figure / per-table analysis drivers."""

import numpy as np
import pytest

from repro.analysis.design_space import (
    corner_summary_rows,
    figure7_slices,
    format_table1,
    paper_table1_reference,
)
from repro.analysis.dnn_tables import (
    DnnExperimentConfig,
    format_accuracy_table,
    paper_table2_reference,
    paper_table3_reference,
)
from repro.analysis.model_evaluation import format_rms_table, paper_rms_reference
from repro.analysis.nonidealities import (
    discharge_vs_time,
    discharge_vs_wordline_voltage,
    saturation_limited_discharge,
)
from repro.analysis.pvt_sweeps import (
    corner_sweep,
    mismatch_monte_carlo,
    supply_sweep,
    temperature_sweep,
)
from repro.analysis.sota import format_sota_table, sota_design_points
from repro.core.dse import DesignSpace, explore_design_space
from repro.dnn.evaluation import AccuracyReport


class TestSota:
    def test_four_published_designs(self):
        points = sota_design_points()
        assert len(points) == 4
        references = {point.reference for point in points}
        assert references == {"[8]", "[14]", "[15]", "[16]"}

    def test_bit_width_range_matches_figure(self):
        widths = [point.bit_width for point in sota_design_points()]
        assert min(widths) == 4
        assert max(widths) == 8

    def test_energy_reduction_potential(self):
        point = sota_design_points()[0]
        assert point.mac_energy_reduction_potential() > 1.0
        with pytest.raises(ValueError):
            point.mac_energy_reduction_potential(baseline_pj=0.0)

    def test_table_formatting(self):
        text = format_sota_table(sota_design_points())
        assert "clock" in text
        assert "[15]" in text


class TestNonidealities:
    def test_discharge_vs_time_curves(self, technology):
        curves = discharge_vs_time(technology, wordline_voltages=(0.3, 0.7, 1.0), duration=1.5e-9)
        assert len(curves) == 3
        # Higher word-line voltage ends at a lower bit-line voltage.
        finals = [curve.final_voltage for curve in curves]
        assert finals[0] > finals[1] > finals[2]
        # The strongest discharge eventually leaves saturation.
        assert curves[2].saturation_limit > 0.0

    def test_discharge_vs_wordline_voltage_nonlinearity(self, technology):
        sweep = discharge_vs_wordline_voltage(technology, sampling_time=1.28e-9)
        assert sweep["wordline_voltage"].shape == sweep["discharge"].shape
        assert np.all(np.diff(sweep["discharge"]) >= -1e-6)
        # The transfer is visibly nonlinear (the paper's Fig. 4b point).
        assert float(np.max(np.abs(sweep["nonlinearity"]))) > 5e-3

    def test_saturation_limited_discharge(self, technology):
        info = saturation_limited_discharge(technology, wordline_voltage=1.0)
        assert info["saturation_limit_voltage"] > 0.0
        assert info["final_bitline_voltage"] < 1.0


class TestPvtSweeps:
    def test_supply_sweep_ordering(self, technology):
        traces = supply_sweep(technology, supply_voltages=(0.9, 1.1))
        assert traces[0.9][-1] > traces[1.1][-1] - 0.3  # both discharge
        assert (traces[0.9][0] - traces[0.9][-1]) < (traces[1.1][0] - traces[1.1][-1])

    def test_temperature_sweep_ordering(self, technology):
        traces = temperature_sweep(technology, temperatures_celsius=(0.0, 70.0))
        discharge_cold = traces[0.0][0] - traces[0.0][-1]
        discharge_hot = traces[70.0][0] - traces[70.0][-1]
        assert discharge_cold > discharge_hot

    def test_corner_sweep_ordering(self, technology):
        traces = corner_sweep(technology)
        assert traces["fast"][-1] < traces["typical"][-1] < traces["slow"][-1]

    def test_mismatch_monte_carlo_sigma_grows_with_time(self, technology):
        result = mismatch_monte_carlo(technology, samples=150, sampling_times=(0.5e-9, 1.5e-9))
        assert result["final_voltages"].shape == (150,)
        sigmas = result["sigma_at_sampling_times"]
        assert sigmas[1] > sigmas[0] > 0.0


class TestModelEvaluationDriver:
    def test_paper_reference_units(self):
        reference = paper_rms_reference()
        assert reference["rms_supply"] == pytest.approx(0.88e-3)
        assert reference["rms_discharge_energy"] == pytest.approx(0.74e-15)

    def test_format_rms_table(self):
        rows = [
            {"model": "demo", "paper_rms": 0.8, "measured_rms": 1.2, "unit": "mV"},
        ]
        text = format_rms_table(rows)
        assert "demo" in text
        assert "mV" in text


class TestDesignSpaceDriver:
    @pytest.fixture(scope="class")
    def exploration(self, suite):
        return explore_design_space(suite, DesignSpace.quick())

    def test_corner_summary_rows(self, exploration):
        rows = corner_summary_rows(exploration)
        assert len(rows) == 3
        assert {row["corner"] for row in rows} == {"fom", "power", "variation"}
        for row in rows:
            assert row["energy_fj"] > 0.0
            assert row["operating_frequency_mhz"] > 0.0

    def test_format_table1(self, exploration):
        text = format_table1(corner_summary_rows(exploration))
        assert "corner" in text
        assert "fom" in text

    def test_paper_table1_reference_values(self):
        rows = paper_table1_reference()
        assert rows[0]["eps_mul_lsb"] == pytest.approx(4.78)
        assert rows[2]["energy_fj"] == pytest.approx(69.8)

    def test_figure7_slices_structure(self, exploration):
        slices = figure7_slices(exploration)
        assert slices["versus_full_scale"]
        assert slices["versus_tau0"]
        assert {"v_dac_zero", "eps_mul_lsb", "energy_fj"} <= set(slices["versus_full_scale"][0])


class TestDnnTableDriver:
    def test_quick_config_is_smaller(self):
        quick = DnnExperimentConfig.quick()
        default = DnnExperimentConfig()
        assert quick.epochs < default.epochs
        assert quick.image_size <= default.image_size

    def test_paper_references_contain_all_models(self):
        table2 = paper_table2_reference()
        table3 = paper_table3_reference()
        for table in (table2, table3):
            assert set(table) == {"VGG16", "VGG19", "ResNet50", "ResNet101"}
        assert table2["VGG16"]["variation"][0] == pytest.approx(38.22)
        assert table3["ResNet50"]["fom"] == pytest.approx(92.83)

    def test_format_accuracy_table(self):
        reports = {
            "DemoNet": {
                "float32": AccuracyReport("DemoNet", "float32", 0.9, 1.0, 100),
                "int4": AccuracyReport("DemoNet", "int4", 0.85, 0.99, 100),
            }
        }
        text = format_accuracy_table(reports, paper_reference=None)
        assert "DemoNet" in text
        assert "float32" in text
