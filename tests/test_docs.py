"""Documentation health checks: links resolve, doctest examples run.

Run in CI by the docs job (see ``.github/workflows/ci.yml``): every
relative link in README.md and docs/*.md must point at a real file, and
every ``>>>`` example in the public-API docstrings must execute — so the
documentation cannot silently rot as the code moves.
"""

from __future__ import annotations

import doctest
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Markdown files whose links must resolve.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

#: Modules whose docstring examples must execute (the docstring-sweep
#: satellite added ``>>>`` examples to each).
DOCTEST_MODULES = [
    "repro.journal",
    "repro.sched",
    "repro.telemetry",
    "repro.runtime",
    "repro.runtime.cache",
    "repro.runtime.cli",
    "repro.runtime.executors",
    "repro.cluster.worker",
    "repro.cluster.control",
    "repro.obs.metrics",
    "repro.obs.events",
    "repro.lint.core",
    "repro.lint.baseline",
    "repro.httpd",
    "repro.gateway.config",
    "repro.gateway.routes",
    "repro.gateway.sse",
    "repro.gateway.artifacts",
    "repro.gateway.webhooks",
]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(markdown: str):
    for target in _LINK.findall(markdown):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


class TestDocsTree:
    def test_docs_tree_exists(self):
        for name in (
            "architecture.md",
            "protocol.md",
            "operations.md",
            "scheduling.md",
            "observability.md",
            "lint.md",
            "gateway.md",
        ):
            assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} missing"

    def test_readme_links_the_docs_tree(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for name in (
            "architecture.md",
            "protocol.md",
            "operations.md",
            "scheduling.md",
            "observability.md",
            "lint.md",
            "gateway.md",
        ):
            assert f"docs/{name}" in readme, f"README does not link docs/{name}"

    def test_architecture_links_scheduling(self):
        text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
        assert "scheduling.md" in text, "architecture.md does not link scheduling.md"

    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_relative_links_resolve(self, path):
        text = path.read_text(encoding="utf-8")
        broken = [
            target
            for target in _relative_links(text)
            if not (path.parent / target).exists()
        ]
        assert not broken, f"{path.name} has broken links: {broken}"

    def test_docs_describe_shipped_wire_behaviour(self):
        """The protocol spec must match the code's constants and codes."""
        from repro.service import protocol as service_protocol
        from repro.cluster import protocol as cluster_protocol

        spec = (REPO_ROOT / "docs" / "protocol.md").read_text(encoding="utf-8")
        assert f"PROTOCOL_VERSION = {service_protocol.PROTOCOL_VERSION}" in spec
        assert (
            f"CLUSTER_PROTOCOL_VERSION = {cluster_protocol.CLUSTER_PROTOCOL_VERSION}"
            in spec
        )
        for code in service_protocol.ERROR_CODES:
            assert f"`{code}`" in spec, f"error code {code} undocumented"
        for op in ("submit", "cancel", "status", "ping", "watch"):
            assert f'"op": "{op}"' in spec, f"service op {op} undocumented"
        # Service protocol v3 (observability): the watch stream's frames
        # and the trace field on accepted must be specified.
        for event in ("watching", "obs"):
            assert f'"event": "{event}"' in spec, f"service event {event} undocumented"
        assert '"trace"' in spec or "`trace`" in spec, "trace field undocumented"
        # Service protocol v4 (multi-tenant scheduling): the sched submit
        # field and the journal's pause/resume transitions are specified.
        assert '"sched"' in spec or "`sched`" in spec, "sched field undocumented"
        for transition in ("paused", "resumed"):
            assert f"`{transition}`" in spec, f"transition {transition} undocumented"
        accepted = service_protocol.accepted_event("r", "k", False, trace="t-1")
        assert accepted["trace"] == "t-1"
        assert service_protocol.watch_request("r")["op"] == "watch"
        assert service_protocol.obs_event("r", {"seq": 1})["data"] == {"seq": 1}
        # Cluster protocol v3 (adaptive scheduling): frame names must match
        # the constructors in repro.cluster.protocol.
        for op in ("chunk_done", "split_ack", "chunk_failed", "heartbeat"):
            assert f'"op": "{op}"' in spec, f"cluster op {op} undocumented"
        for event in ("split", "chunk", "cancel", "welcome", "shutdown"):
            assert f'"event": "{event}"' in spec, f"cluster event {event} undocumented"
        # The spec's example frames must build with the real constructors.
        split = cluster_protocol.split_event("c1", keep=0)
        assert split["event"] == "split" and split["keep"] == 0
        ack = cluster_protocol.split_ack_request("c1", kept=3)
        assert ack["op"] == "split_ack" and ack["kept"] == 3
        done = cluster_protocol.chunk_done_request("c1", [1, 2])
        assert done["count"] == 2
        assert '"kept"' in spec or "`kept`" in spec, "split_ack kept field undocumented"
        assert "`count`" in spec or '"count"' in spec, "chunk_done count field undocumented"

    def test_docs_describe_binary_frames_and_shm_handoff(self):
        """Protocol v5: the binary-frame substrate, the cluster's binary /
        shared-memory completions and the service's binary result frame
        must be specified with the shipped constants, and the spec's
        frames must build with the real constructors."""
        from repro import wire
        from repro.cluster import protocol as cluster_protocol
        from repro.cluster import worker as cluster_worker
        from repro.service import protocol as service_protocol

        spec = (REPO_ROOT / "docs" / "protocol.md").read_text(encoding="utf-8")
        # The substrate: the header key and both bounds, as shipped.
        assert wire.BINARY_KEY == "binary"
        assert '"binary"' in spec, "binary header key undocumented"
        assert wire.MAX_BINARY_BYTES == 256 * 1024 * 1024
        assert "MAX_BINARY_BYTES" in spec, "binary payload bound undocumented"
        assert "MAX_MESSAGE_BYTES" in spec
        # Cluster v5: binary + shared-memory completions.
        for field in ('"arrays"', '"shm"', '"digest"', '"size"'):
            assert field in spec, f"cluster v5 field {field} undocumented"
        assert "SHM_MIN_BYTES" in spec, "SHM size floor undocumented"
        assert cluster_worker.SHM_MIN_BYTES == 1024 * 1024
        assert "REPRO_SHM_MIN_BYTES" in spec, "SHM env override undocumented"
        header = cluster_protocol.chunk_done_binary_header(
            "c1", [{"dtype": "<f8", "shape": [2]}], count=1
        )
        assert header["op"] == "chunk_done" and header["count"] == 1
        assert header["arrays"] == [{"dtype": "<f8", "shape": [2]}]
        assert "results" not in header
        shm = cluster_protocol.chunk_done_shm_request(
            "c1", [{"dtype": "<f8", "shape": [2]}], 1, "seg", "ab" * 32, 16
        )
        assert shm["shm"] == "seg" and shm["digest"] == "ab" * 32 and shm["size"] == 16
        # Service v5: the binary result frame and its switch-over threshold.
        assert "RESULT_BINARY_BYTES" in spec, "result switch-over undocumented"
        assert service_protocol.RESULT_BINARY_BYTES == 256 * 1024
        result_header = service_protocol.result_header("r1", 0.5)
        assert result_header["event"] == "result" and "payload" not in result_header
        # The spec's round-trip promise: a binary frame survives the wire.
        frame = wire.encode_binary({"op": "chunk_done", "chunk": "c1"}, b"\x01\x02")
        assert frame.split(b"\n", 1)[1] == b"\x01\x02"

    def test_protocol_vocabulary_constants_cover_the_spec(self):
        """The frame-vocabulary tuples (which pin the REPRO-PROTO01 lint
        rule) must agree with the frames the spec documents and the
        constructors actually emit."""
        from repro.service import protocol as service_protocol
        from repro.cluster import protocol as cluster_protocol

        assert set(service_protocol.SERVICE_OPS) == {
            "submit", "cancel", "status", "ping", "watch",
        }
        for event in ("accepted", "progress", "result", "error", "watching",
                      "obs", "pong", "status"):
            assert event in service_protocol.SERVICE_EVENTS
        # Constructor outputs are members of their vocabulary.
        assert (
            cluster_protocol.hello_request("n", 1, 2, "v")["op"]
            in cluster_protocol.WORKER_OPS
        )
        assert (
            cluster_protocol.split_ack_request("c", 1)["op"]
            in cluster_protocol.WORKER_OPS
        )
        for event_message in (
            cluster_protocol.welcome_event("w", 1.0),
            cluster_protocol.split_event("c", 0),
            cluster_protocol.cancel_event("c"),
            cluster_protocol.shutdown_event(),
            cluster_protocol.error_event("boom"),
        ):
            assert event_message["event"] in cluster_protocol.COORDINATOR_EVENTS

    def test_gateway_doc_matches_the_route_table(self):
        """docs/gateway.md is the wire-facing spec: every route in the
        table and every SSE event name must appear there, plus the
        headers/fields a client integrates against."""
        from repro.gateway.routes import ROUTES, SSE_EVENTS

        text = (REPO_ROOT / "docs" / "gateway.md").read_text(encoding="utf-8")
        for route in ROUTES:
            assert f"`{route}`" in text, f"route {route} undocumented"
        for event in SSE_EVENTS:
            assert f"`{event}`" in text, f"SSE event {event} undocumented"
        for needle in (
            "python -m repro gateway",
            "--spill-bytes",
            "--artifact-root",
            "X-Repro-Signature",
            "X-Repro-Delivery-Attempt",
            "X-Repro-Digest",
            "Last-Event-ID",
            "verify_signature",
            "webhook_url",
            "error_code",
            "sched",
        ):
            assert needle in text, f"gateway.md does not mention {needle}"

    def test_lint_doc_matches_the_shipped_rules(self):
        """docs/lint.md is the rule reference: every shipped rule id, the
        exit-code contract and the suppression syntax must be there, and
        the metric pattern quoted must be the enforced one."""
        from repro.lint import RULES
        from repro.obs.metrics import METRIC_NAME_RE

        text = (REPO_ROOT / "docs" / "lint.md").read_text(encoding="utf-8")
        for rule in RULES:
            assert f"`{rule}`" in text, f"rule {rule} undocumented in lint.md"
        for needle in (
            "python -m repro lint",
            "--write-baseline",
            "--format json",
            "--list-rules",
            "repro: ignore[",
            "lint-baseline.json",
            "REPRO-PARSE",
        ):
            assert needle in text, f"lint.md does not mention {needle}"
        assert METRIC_NAME_RE.pattern.strip("^$") in text

    def test_scheduling_doc_names_the_shipped_knobs(self):
        """The scheduler guide must reference the real flags and telemetry
        fields, so it cannot silently rot as the code moves."""
        text = (REPO_ROOT / "docs" / "scheduling.md").read_text(encoding="utf-8")
        for needle in (
            "--chunk-window",
            "chunk_window",
            "throughput_jobs_per_s",
            "split",
            "--throttle",
            # multi-tenant scheduling (repro.sched)
            "--sched-class",
            "--sched-priority",
            "preempt",
            "bench_priority_scheduling.py",
        ):
            assert needle in text, f"scheduling.md does not mention {needle}"
        from repro.cluster.coordinator import SPLIT_AGE_FACTOR

        assert f"SPLIT_AGE_FACTOR = {SPLIT_AGE_FACTOR}" in text
        # the documented class vocabulary and default priorities are the
        # shipped ones
        from repro.sched import DEFAULT_PRIORITIES, JOB_CLASSES

        for job_class in JOB_CLASSES:
            assert f"`{job_class}`" in text, f"job class {job_class} undocumented"
        assert JOB_CLASSES == ("interactive", "batch")
        assert DEFAULT_PRIORITIES == {"interactive": 10, "batch": 0}

    def test_observability_doc_matches_the_registry(self):
        """docs/observability.md is a *reference*: every metric any tier
        registers and every event type must be documented, and the naming
        rule quoted there must be the enforced one."""
        import repro.runtime  # noqa: F401  (registers engine metrics)
        import repro.runtime.cache  # noqa: F401
        import repro.service.server  # noqa: F401
        import repro.cluster.worker  # noqa: F401
        import repro.obs.http  # noqa: F401
        import repro.gateway.server  # noqa: F401
        import repro.gateway.webhooks  # noqa: F401
        from repro import obs
        from repro.cluster.coordinator import Coordinator

        Coordinator()  # cluster counters register at first construction
        text = (REPO_ROOT / "docs" / "observability.md").read_text(encoding="utf-8")
        undocumented = [name for name in obs.REGISTRY.names() if name not in text]
        assert not undocumented, f"metrics missing from observability.md: {undocumented}"
        for event_type in obs.EVENT_TYPES:
            assert f"`{event_type}`" in text, f"event type {event_type} undocumented"
        # the naming rule in the doc is the one the registry enforces
        assert obs.METRIC_NAME_RE.pattern.strip("^$") in text
        # the watch frame schema: seq / ts / type / trace
        for field in ("`seq`", "`ts`", "`type`", "`trace`"):
            assert field in text, f"watch frame field {field} undocumented"
        # the advertised read paths
        for needle in ("--metrics-port", '"op": "watch"', "/metrics", "trace"):
            assert needle in text, f"observability.md does not mention {needle}"


class TestDoctests:
    @pytest.mark.parametrize("module_name", DOCTEST_MODULES)
    def test_docstring_examples_execute(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.attempted > 0, f"{module_name} lost its doctest examples"
        assert results.failed == 0
