"""Documentation health checks: links resolve, doctest examples run.

Run in CI by the docs job (see ``.github/workflows/ci.yml``): every
relative link in README.md and docs/*.md must point at a real file, and
every ``>>>`` example in the public-API docstrings must execute — so the
documentation cannot silently rot as the code moves.
"""

from __future__ import annotations

import doctest
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Markdown files whose links must resolve.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

#: Modules whose docstring examples must execute (the docstring-sweep
#: satellite added ``>>>`` examples to each).
DOCTEST_MODULES = [
    "repro.journal",
    "repro.runtime",
    "repro.runtime.cache",
    "repro.runtime.cli",
    "repro.runtime.executors",
    "repro.cluster.worker",
]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(markdown: str):
    for target in _LINK.findall(markdown):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


class TestDocsTree:
    def test_docs_tree_exists(self):
        for name in ("architecture.md", "protocol.md", "operations.md"):
            assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} missing"

    def test_readme_links_the_docs_tree(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for name in ("architecture.md", "protocol.md", "operations.md"):
            assert f"docs/{name}" in readme, f"README does not link docs/{name}"

    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_relative_links_resolve(self, path):
        text = path.read_text(encoding="utf-8")
        broken = [
            target
            for target in _relative_links(text)
            if not (path.parent / target).exists()
        ]
        assert not broken, f"{path.name} has broken links: {broken}"

    def test_docs_describe_shipped_wire_behaviour(self):
        """The protocol spec must match the code's constants and codes."""
        from repro.service import protocol as service_protocol
        from repro.cluster import protocol as cluster_protocol

        spec = (REPO_ROOT / "docs" / "protocol.md").read_text(encoding="utf-8")
        assert f"PROTOCOL_VERSION = {service_protocol.PROTOCOL_VERSION}" in spec
        assert (
            f"CLUSTER_PROTOCOL_VERSION = {cluster_protocol.CLUSTER_PROTOCOL_VERSION}"
            in spec
        )
        for code in service_protocol.ERROR_CODES:
            assert f"`{code}`" in spec, f"error code {code} undocumented"
        for op in ("submit", "cancel", "status", "ping"):
            assert f'"op": "{op}"' in spec, f"service op {op} undocumented"


class TestDoctests:
    @pytest.mark.parametrize("module_name", DOCTEST_MODULES)
    def test_docstring_examples_execute(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.attempted > 0, f"{module_name} lost its doctest examples"
        assert results.failed == 0
