"""Tests for the network container, model builders, datasets and training."""

import numpy as np
import pytest

from repro.dnn.datasets import cifar10_like, imagenet_like, make_synthetic_image_dataset
from repro.dnn.models import (
    build_mlp,
    build_resnet101_like,
    build_resnet50_like,
    build_vgg16_like,
    build_vgg19_like,
)
from repro.dnn.network import Network
from repro.dnn.training import (
    TrainingConfig,
    classification_accuracy,
    cross_entropy_loss,
    replace_classifier_head,
    softmax,
    train_network,
)


class TestNetwork:
    def test_forward_shape_and_summary(self):
        net = build_vgg16_like((8, 8, 3), classes=5)
        output = net.forward(np.zeros((2, 8, 8, 3), dtype=np.float32))
        assert output.shape == (2, 5)
        assert net.output_shape() == (5,)
        assert "vgg16-like" in net.summary()
        assert net.parameter_count() > 0

    def test_predict_batches_match_forward(self):
        net = build_mlp(12, 3)
        inputs = np.random.default_rng(0).normal(size=(10, 12)).astype(np.float32)
        assert np.allclose(net.predict(inputs, batch_size=3), net.forward(inputs), atol=1e-6)

    def test_zero_grad(self):
        net = build_mlp(6, 2)
        for parameter in net.parameters():
            parameter.grad += 1.0
        net.zero_grad()
        assert all(np.all(p.grad == 0.0) for p in net.parameters())

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network([], input_shape=(4,))


class TestModelBuilders:
    def test_all_builders_produce_working_networks(self):
        for builder in (build_vgg16_like, build_vgg19_like, build_resnet50_like, build_resnet101_like):
            net = builder((8, 8, 3), classes=7)
            output = net.forward(np.zeros((1, 8, 8, 3), dtype=np.float32))
            assert output.shape == (1, 7)

    def test_deeper_variants_have_more_multiplications(self):
        vgg16 = build_vgg16_like((16, 16, 3), classes=10)
        vgg19 = build_vgg19_like((16, 16, 3), classes=10)
        resnet50 = build_resnet50_like((16, 16, 3), classes=10)
        resnet101 = build_resnet101_like((16, 16, 3), classes=10)
        assert vgg19.multiplication_count() > vgg16.multiplication_count()
        assert resnet101.multiplication_count() > resnet50.multiplication_count()

    def test_mlp_builder(self):
        net = build_mlp(20, 4, hidden=(16,))
        assert net.forward(np.zeros((3, 20), dtype=np.float32)).shape == (3, 4)


class TestDatasets:
    def test_shapes_and_ranges(self, tiny_dataset):
        assert tiny_dataset.train_images.ndim == 4
        assert tiny_dataset.image_shape == (8, 8, 3)
        assert tiny_dataset.train_images.min() >= 0.0
        assert tiny_dataset.train_images.max() <= 1.0
        assert set(np.unique(tiny_dataset.train_labels)) == set(range(4))

    def test_deterministic_generation(self):
        first = make_synthetic_image_dataset(classes=3, train_per_class=5, test_per_class=2, seed=9)
        second = make_synthetic_image_dataset(classes=3, train_per_class=5, test_per_class=2, seed=9)
        assert np.allclose(first.train_images, second.train_images)
        assert np.array_equal(first.train_labels, second.train_labels)

    def test_class_balance(self, tiny_dataset):
        counts = np.bincount(tiny_dataset.train_labels)
        assert np.all(counts == counts[0])

    def test_named_configurations(self):
        imagenet = imagenet_like(train_per_class=3, test_per_class=2)
        cifar = cifar10_like(train_per_class=3, test_per_class=2)
        assert imagenet.classes == 20
        assert cifar.classes == 10
        assert "imagenet" in imagenet.describe()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_synthetic_image_dataset(classes=1)
        with pytest.raises(ValueError):
            make_synthetic_image_dataset(noise=-0.1)


class TestTraining:
    def test_softmax_and_cross_entropy(self):
        logits = np.array([[2.0, 0.0, -2.0]], dtype=np.float32)
        probabilities = softmax(logits)
        assert probabilities.sum() == pytest.approx(1.0)
        loss, grad = cross_entropy_loss(logits, np.array([0]))
        assert loss > 0.0
        assert grad.shape == logits.shape
        assert float(grad.sum()) == pytest.approx(0.0, abs=1e-6)

    def test_training_learns_tiny_task(self, tiny_dataset):
        """A small conv net must fit the easy synthetic dataset."""
        net = build_vgg16_like((8, 8, 3), classes=tiny_dataset.classes)
        history = train_network(
            net,
            tiny_dataset,
            TrainingConfig(epochs=8, batch_size=32, learning_rate=0.1, seed=0),
        )
        assert history.losses[-1] < history.losses[0]
        assert history.final_test_accuracy > 0.6
        assert classification_accuracy(net, tiny_dataset.test_images, tiny_dataset.test_labels) == pytest.approx(
            history.final_test_accuracy
        )

    def test_replace_classifier_head(self, tiny_dataset):
        net = build_mlp(8 * 8 * 3, tiny_dataset.classes)
        new_net = replace_classifier_head(net, classes=7)
        assert new_net.output_shape() == (7,)
        # The backbone layers are shared, only the head is new.
        assert new_net.layers[0] is net.layers[0]
        assert new_net.layers[-1] is not net.layers[-1]

    def test_replace_head_requires_dense_tail(self):
        from repro.dnn.layers import ReLU

        net = Network([ReLU()], input_shape=(4,))
        with pytest.raises(ValueError):
            replace_classifier_head(net, classes=3)

    def test_invalid_training_config_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=-1.0)
        with pytest.raises(ValueError):
            TrainingConfig(momentum=1.5)
