"""Unit tests for the reference transient discharge solver."""

import numpy as np
import pytest

from repro.circuits.conditions import OperatingConditions
from repro.circuits.mismatch import MismatchParameters, MismatchSampler
from repro.circuits.technology import ProcessCorner, tsmc65_like
from repro.circuits.transient import TransientSolver


class TestBasicDischarge:
    def test_voltage_monotonically_decreases(self, solver, nominal_conditions):
        result = solver.simulate_discharge(0.9, 1.5e-9, nominal_conditions)
        voltages = np.atleast_1d(result.voltages)
        assert np.all(np.diff(voltages) <= 1e-12)

    def test_starts_at_vdd(self, solver, nominal_conditions):
        result = solver.simulate_discharge(0.8, 1e-9, nominal_conditions)
        assert float(np.atleast_1d(result.voltages)[0]) == pytest.approx(
            nominal_conditions.vdd
        )

    def test_higher_wordline_voltage_discharges_faster(self, solver, nominal_conditions):
        deltas = solver.discharge_at(np.array([0.5, 0.7, 0.9]), 1.0e-9, nominal_conditions)
        assert deltas[0] < deltas[1] < deltas[2]

    def test_longer_time_discharges_more(self, solver, nominal_conditions):
        short = float(solver.discharge_at(0.8, 0.4e-9, nominal_conditions))
        long = float(solver.discharge_at(0.8, 1.6e-9, nominal_conditions))
        assert long > short

    def test_stored_zero_gives_negligible_discharge(self, solver, nominal_conditions):
        delta = float(solver.discharge_at(0.9, 1.6e-9, nominal_conditions, stored_bit=0))
        assert delta < 1e-3

    def test_subthreshold_wordline_gives_small_residual_discharge(
        self, solver, nominal_conditions, technology
    ):
        delta = float(
            solver.discharge_at(technology.vth_nominal - 0.1, 1.6e-9, nominal_conditions)
        )
        assert 0.0 <= delta < 20e-3

    def test_voltage_never_negative(self, solver, nominal_conditions):
        result = solver.simulate_discharge(1.0, 10e-9, nominal_conditions)
        assert np.all(result.voltages >= 0.0)

    def test_invalid_inputs_rejected(self, solver, nominal_conditions):
        with pytest.raises(ValueError):
            solver.simulate_discharge(0.8, -1e-9, nominal_conditions)
        with pytest.raises(ValueError):
            solver.simulate_discharge(0.8, 1e-9, nominal_conditions, stored_bit=2)
        with pytest.raises(ValueError):
            TransientSolver(tsmc65_like(), time_step=0.0)


class TestNumericalAccuracy:
    def test_time_step_convergence(self, technology, nominal_conditions):
        """Halving the step must not change the result at the mV level."""
        coarse = TransientSolver(technology, time_step=20e-12)
        fine = TransientSolver(technology, time_step=5e-12)
        delta_coarse = float(coarse.discharge_at(0.9, 1.28e-9, nominal_conditions))
        delta_fine = float(fine.discharge_at(0.9, 1.28e-9, nominal_conditions))
        assert delta_coarse == pytest.approx(delta_fine, abs=2e-3)

    def test_voltage_grid_convergence(self, technology, nominal_conditions):
        coarse = TransientSolver(technology, voltage_grid_points=33)
        fine = TransientSolver(technology, voltage_grid_points=257)
        delta_coarse = float(coarse.discharge_at(0.9, 1.28e-9, nominal_conditions))
        delta_fine = float(fine.discharge_at(0.9, 1.28e-9, nominal_conditions))
        assert delta_coarse == pytest.approx(delta_fine, abs=2e-3)


class TestPvtAndMismatch:
    def test_corner_ordering(self, solver, nominal_conditions):
        deltas = {
            corner: float(
                solver.discharge_at(0.9, 1.28e-9, nominal_conditions.with_corner(corner))
            )
            for corner in ProcessCorner
        }
        assert deltas[ProcessCorner.FAST] > deltas[ProcessCorner.TYPICAL] > deltas[ProcessCorner.SLOW]

    def test_supply_voltage_increases_discharge(self, solver, nominal_conditions):
        low = float(solver.discharge_at(0.9, 1.28e-9, nominal_conditions.with_vdd(0.9)))
        high = float(solver.discharge_at(0.9, 1.28e-9, nominal_conditions.with_vdd(1.1)))
        assert high > low

    def test_heating_slows_discharge(self, solver, nominal_conditions):
        cold = float(
            solver.discharge_at(0.9, 1.28e-9, nominal_conditions.with_temperature_celsius(0.0))
        )
        hot = float(
            solver.discharge_at(0.9, 1.28e-9, nominal_conditions.with_temperature_celsius(70.0))
        )
        assert hot < cold

    def test_mismatch_spread_grows_with_wordline_voltage(self, solver, nominal_conditions, technology):
        sampler = MismatchSampler(MismatchParameters.from_technology(technology), seed=3)
        arrays = sampler.sample_arrays(200)
        deltas = solver.discharge_at(
            np.array([[0.5], [0.9]]), 1.28e-9, nominal_conditions, mismatch=arrays
        )
        assert deltas.shape == (2, 200)
        assert np.std(deltas[1]) > np.std(deltas[0])

    def test_mismatch_broadcasting_single_sample(self, solver, nominal_conditions, technology):
        sampler = MismatchSampler(MismatchParameters.from_technology(technology), seed=4)
        sample = sampler.sample()
        delta = solver.discharge_at(0.9, 1.0e-9, nominal_conditions, mismatch=sample)
        assert np.shape(delta) == ()


class TestResultContainer:
    def test_voltage_at_interpolates(self, solver, nominal_conditions):
        result = solver.simulate_discharge(0.9, 2.0e-9, nominal_conditions)
        mid = float(result.voltage_at(1.0e-9))
        assert float(result.voltages[..., -1]) < mid < nominal_conditions.vdd

    def test_voltage_at_out_of_range_rejected(self, solver, nominal_conditions):
        result = solver.simulate_discharge(0.9, 1.0e-9, nominal_conditions)
        with pytest.raises(ValueError):
            result.voltage_at(2.0e-9)

    def test_waveform_extraction(self, solver, nominal_conditions):
        result = solver.simulate_discharge(np.array([0.6, 0.9]), 1.0e-9, nominal_conditions)
        assert result.trace_count == 2
        wave = result.waveform(1)
        assert wave.initial_value == pytest.approx(nominal_conditions.vdd)
        with pytest.raises(IndexError):
            result.waveform(5)

    def test_saturation_time_only_above_threshold(self, solver, nominal_conditions, technology):
        below = solver.saturation_time(technology.vth_nominal - 0.05, nominal_conditions)
        above = solver.saturation_time(1.0, nominal_conditions, horizon=6e-9)
        assert below is None
        assert above is not None and above > 0.0
