"""Tests for the fitted OPTIMA discharge model (Eq. 3-6)."""

import numpy as np
import pytest

from repro.core.discharge_model import DischargeModel


class TestModelAccuracy:
    def test_matches_reference_on_grid_points(self, quick_calibration, solver, nominal_conditions):
        """On the fitting grid the model must track the reference simulator."""
        model = quick_calibration.suite.discharge
        data = quick_calibration.data
        predicted = model.bitline_voltage(data.base.time, data.base.wordline_voltage)
        errors = np.abs(predicted - data.base.bitline_voltage)
        assert float(np.mean(errors)) < 10e-3

    def test_matches_reference_off_grid(self, suite, solver, nominal_conditions):
        """Interpolation between fitted grid points stays accurate."""
        time, v_wl = 0.9e-9, 0.82
        reference = float(solver.discharge_at(v_wl, time, nominal_conditions))
        predicted = float(suite.discharge_voltage(time, v_wl, nominal_conditions))
        assert predicted == pytest.approx(reference, abs=15e-3)

    def test_discharge_grows_with_time_and_voltage(self, suite):
        model = suite.discharge
        times = np.linspace(0.2e-9, 1.8e-9, 8)
        d_time = model.discharge(times, 0.9)
        assert np.all(np.diff(d_time) > 0.0)
        voltages = np.linspace(0.5, 1.0, 8)
        d_voltage = model.discharge(1.0e-9, voltages)
        assert np.all(np.diff(d_voltage) > 0.0)


class TestPvtExtensions:
    def test_supply_dependence_direction(self, suite):
        model = suite.discharge
        low = float(model.discharge(1.28e-9, 0.9, vdd=0.9))
        high = float(model.discharge(1.28e-9, 0.9, vdd=1.1))
        assert high > low

    def test_temperature_dependence_direction(self, suite):
        model = suite.discharge
        cold = float(model.discharge(1.28e-9, 0.9, temperature=273.15))
        hot = float(model.discharge(1.28e-9, 0.9, temperature=343.15))
        assert hot < cold

    def test_stored_zero_keeps_precharge_level(self, suite):
        model = suite.discharge
        voltage = model.bitline_voltage(1.0e-9, 0.9, vdd=1.05, stored_bit=0)
        assert float(voltage) == pytest.approx(1.05)
        assert float(model.discharge(1.0e-9, 0.9, stored_bit=0)) == pytest.approx(0.0)

    def test_invalid_stored_bit_rejected(self, suite):
        with pytest.raises(ValueError):
            suite.discharge.bitline_voltage(1e-9, 0.9, stored_bit=2)


class TestMismatchModel:
    def test_sigma_positive_and_grows_with_voltage(self, suite):
        model = suite.discharge
        sigma_low = float(model.mismatch_sigma(1.28e-9, 0.5))
        sigma_high = float(model.mismatch_sigma(1.28e-9, 1.0))
        assert 0.0 < sigma_low < sigma_high

    def test_sigma_matches_monte_carlo_reference(self, quick_calibration):
        data = quick_calibration.data
        model = quick_calibration.suite.discharge
        predicted = model.mismatch_sigma(data.mismatch.time, data.mismatch.wordline_voltage)
        errors = np.abs(predicted - data.mismatch.sigma)
        assert float(np.mean(errors)) < 5e-3

    def test_sampling_statistics(self, suite, rng):
        model = suite.discharge
        samples = model.sample_discharge(
            np.full(4000, 1.28e-9), np.full(4000, 0.9), rng
        )
        deterministic = float(model.discharge(1.28e-9, 0.9))
        sigma = float(model.mismatch_sigma(1.28e-9, 0.9))
        assert float(np.mean(samples)) == pytest.approx(deterministic, abs=sigma / 10.0)
        assert float(np.std(samples)) == pytest.approx(sigma, rel=0.1)

    def test_sampling_with_stored_zero_is_deterministic(self, suite, rng):
        model = suite.discharge
        samples = model.sample_discharge(np.full(10, 1e-9), np.full(10, 0.9), rng, stored_bit=0)
        assert np.all(samples == 0.0)


class TestSerialization:
    def test_roundtrip_preserves_predictions(self, suite):
        model = suite.discharge
        clone = DischargeModel.from_dict(model.to_dict())
        times = np.linspace(0.2e-9, 1.8e-9, 5)
        voltages = np.linspace(0.4, 1.0, 5)
        assert np.allclose(
            clone.bitline_voltage(times, voltages), model.bitline_voltage(times, voltages)
        )
        assert np.allclose(
            clone.mismatch_sigma(times, voltages), model.mismatch_sigma(times, voltages)
        )
        assert clone.supply_mode == model.supply_mode

    def test_invalid_supply_mode_rejected(self, suite):
        model = suite.discharge
        with pytest.raises(ValueError):
            DischargeModel(
                base=model.base,
                supply=model.supply,
                temperature_coefficient=model.temperature_coefficient,
                mismatch_sigma_model=model.mismatch_sigma_model,
                threshold_voltage=model.threshold_voltage,
                vdd_nominal=model.vdd_nominal,
                temperature_nominal=model.temperature_nominal,
                supply_mode="bogus",
            )
