"""Unit tests for the technology card and process corners."""

import math

import pytest

from repro.circuits.technology import ProcessCorner, TechnologyCard, tsmc65_like


class TestTechnologyCard:
    def test_default_card_is_valid(self):
        card = tsmc65_like()
        assert card.vdd_nominal > 0.0
        assert 0.0 < card.vth_nominal < card.vdd_nominal

    def test_invalid_supply_rejected(self):
        with pytest.raises(ValueError):
            TechnologyCard(vdd_nominal=0.0)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            TechnologyCard(vth_nominal=1.5, vdd_nominal=1.0)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            TechnologyCard(alpha=2.5)

    def test_thermal_voltage_room_temperature(self):
        card = tsmc65_like()
        thermal = card.thermal_voltage(300.15)
        assert 0.024 < thermal < 0.028

    def test_threshold_drops_with_temperature(self):
        card = tsmc65_like()
        cold = card.threshold_voltage(273.15)
        hot = card.threshold_voltage(350.0)
        assert hot < cold

    def test_mobility_degrades_with_temperature(self):
        card = tsmc65_like()
        assert card.mobility_factor(350.0) < card.mobility_factor(300.15)
        assert card.mobility_factor(card.temperature_nominal) == pytest.approx(1.0)

    def test_device_gain_scales_with_geometry(self):
        card = tsmc65_like()
        narrow = card.device_gain(100e-9, 65e-9, card.temperature_nominal)
        wide = card.device_gain(200e-9, 65e-9, card.temperature_nominal)
        assert wide == pytest.approx(2.0 * narrow)

    def test_device_gain_rejects_bad_geometry(self):
        card = tsmc65_like()
        with pytest.raises(ValueError):
            card.device_gain(0.0, 65e-9, 300.0)

    def test_mismatch_sigma_follows_pelgrom(self):
        card = tsmc65_like()
        small = card.mismatch_sigma_vth(100e-9, 65e-9)
        large = card.mismatch_sigma_vth(400e-9, 260e-9)
        assert small == pytest.approx(4.0 * large)

    def test_scaled_returns_modified_copy(self):
        card = tsmc65_like()
        scaled = card.scaled(vdd_nominal=1.2)
        assert scaled.vdd_nominal == pytest.approx(1.2)
        assert card.vdd_nominal == pytest.approx(1.0)


class TestProcessCorner:
    def test_fast_corner_lowers_threshold(self):
        card = tsmc65_like()
        fast = card.threshold_voltage(card.temperature_nominal, ProcessCorner.FAST)
        typical = card.threshold_voltage(card.temperature_nominal, ProcessCorner.TYPICAL)
        slow = card.threshold_voltage(card.temperature_nominal, ProcessCorner.SLOW)
        assert fast < typical < slow

    def test_fast_corner_raises_gain(self):
        card = tsmc65_like()
        fast = card.mobility_factor(card.temperature_nominal, ProcessCorner.FAST)
        slow = card.mobility_factor(card.temperature_nominal, ProcessCorner.SLOW)
        assert fast > 1.0 > slow

    def test_corner_enum_values(self):
        assert ProcessCorner("fast") is ProcessCorner.FAST
        assert ProcessCorner.TYPICAL.threshold_shift == pytest.approx(0.0)
        assert ProcessCorner.TYPICAL.gain_factor == pytest.approx(1.0)
