"""Tests for the characterisation sweeps and the model fitting flow."""

import numpy as np
import pytest

from repro.core.characterization import CharacterizationPlan, characterize
from repro.core.fitting import FitReport, ModelDegrees, fit_all_models
from repro.circuits.technology import tsmc65_like


class TestCharacterizationPlan:
    def test_default_plan_is_valid(self):
        plan = CharacterizationPlan()
        assert len(plan.times) >= 3
        assert len(plan.wordline_voltages) >= 4

    def test_quick_plan_is_smaller(self):
        quick = CharacterizationPlan.quick()
        default = CharacterizationPlan()
        assert len(quick.times) < len(default.times)
        assert quick.mismatch_samples < default.mismatch_samples

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError):
            CharacterizationPlan(times=(1e-9, 2e-9))
        with pytest.raises(ValueError):
            CharacterizationPlan(mismatch_samples=3)


class TestCharacterizationData:
    def test_sweep_shapes_and_counts(self, quick_calibration):
        data = quick_calibration.data
        plan = data.plan
        expected_base = len(plan.times) * len(plan.wordline_voltages)
        assert len(data.base) == expected_base
        assert len(data.supply) == expected_base * len(plan.supply_voltages)
        assert len(data.temperature) == expected_base * len(plan.temperatures_celsius)
        assert len(data.mismatch) == len(plan.times) * len(plan.mismatch_wordline_voltages)
        assert data.record_count() > 0

    def test_discharges_are_physical(self, quick_calibration):
        data = quick_calibration.data
        assert np.all(data.base.bitline_voltage <= data.base.vdd + 1e-9)
        assert np.all(data.base.discharge() >= -1e-9)
        assert np.all(data.mismatch.sigma >= 0.0)
        assert np.all(data.write_energy.energy > 0.0)
        assert np.all(data.discharge_energy.energy >= 0.0)

    def test_discharge_grows_with_wordline_voltage_at_fixed_time(self, quick_calibration):
        data = quick_calibration.data
        longest_time = max(data.plan.times)
        mask = np.isclose(data.base.time, longest_time, rtol=1e-9, atol=1e-15)
        voltages = data.base.wordline_voltage[mask]
        discharges = data.base.discharge()[mask]
        order = np.argsort(voltages)
        assert np.all(np.diff(discharges[order]) >= -1e-6)


class TestFitting:
    def test_report_fields_positive_and_small(self, quick_calibration):
        report = quick_calibration.report
        assert isinstance(report, FitReport)
        for value in report.as_dict().values():
            assert value >= 0.0
        # Voltage models should be accurate to a few millivolt on the quick plan.
        assert report.worst_voltage_rms < 10e-3
        # Energy models should be accurate to a fraction of a femtojoule.
        assert report.rms_write_energy < 1e-15
        assert report.rms_discharge_energy < 1e-15

    def test_describe_contains_units(self, quick_calibration):
        text = quick_calibration.report.describe()
        assert "mV" in text
        assert "fJ" in text

    def test_literal_supply_mode_is_less_accurate(self, quick_calibration):
        """The paper-literal Eq. 4 form cannot absorb the pre-charge offset."""
        data = quick_calibration.data
        default = fit_all_models(data, ModelDegrees(supply_mode="discharge"))
        literal = fit_all_models(data, ModelDegrees(supply_mode="voltage"))
        assert default.report.rms_supply <= literal.report.rms_supply

    def test_higher_base_degree_does_not_hurt(self, quick_calibration):
        data = quick_calibration.data
        low = fit_all_models(data, ModelDegrees(base_overdrive=2))
        high = fit_all_models(data, ModelDegrees(base_overdrive=5))
        assert high.report.rms_base_discharge <= low.report.rms_base_discharge * 1.05

    def test_invalid_supply_mode_rejected(self, quick_calibration):
        from repro.core.fitting import fit_base_discharge, fit_supply_correction

        data = quick_calibration.data
        degrees = ModelDegrees()
        base = fit_base_discharge(data, data.technology.vth_nominal, degrees)
        with pytest.raises(ValueError):
            fit_supply_correction(
                data, base, data.technology.vth_nominal, 1.0, 2, supply_mode="bogus"
            )
