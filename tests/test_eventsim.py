"""Tests for the event-driven simulation framework."""

import numpy as np
import pytest

from repro.eventsim.kernel import SimulationKernel
from repro.eventsim.signals import AnalogSignal, DigitalSignal, Signal
from repro.eventsim.components import (
    AdcReadout,
    BitlineComponent,
    PrechargeUnit,
    SamplingSwitch,
    WordlineDriver,
)
from repro.eventsim.testbench import MultiplierTestbench
from repro.converters.adc import Adc
from repro.converters.dac import LinearDac
from repro.circuits.conditions import OperatingConditions
from repro.multiplier.config import MultiplierConfig


class TestKernel:
    def test_events_execute_in_time_order(self):
        kernel = SimulationKernel()
        order = []
        kernel.schedule_at(2e-9, lambda: order.append("late"))
        kernel.schedule_at(1e-9, lambda: order.append("early"))
        kernel.run()
        assert order == ["early", "late"]
        assert kernel.now == pytest.approx(2e-9)

    def test_same_time_events_keep_scheduling_order(self):
        kernel = SimulationKernel()
        order = []
        kernel.schedule_at(1e-9, lambda: order.append("first"))
        kernel.schedule_at(1e-9, lambda: order.append("second"))
        kernel.run()
        assert order == ["first", "second"]

    def test_schedule_after_is_relative(self):
        kernel = SimulationKernel()
        seen = []
        kernel.schedule_at(1e-9, lambda: kernel.schedule_after(1e-9, lambda: seen.append(kernel.now)))
        kernel.run()
        assert seen[0] == pytest.approx(2e-9)

    def test_cannot_schedule_in_the_past(self):
        kernel = SimulationKernel()
        kernel.schedule_at(1e-9, lambda: None)
        kernel.run()
        with pytest.raises(ValueError):
            kernel.schedule_at(0.5e-9, lambda: None)

    def test_cancelled_events_are_skipped(self):
        kernel = SimulationKernel()
        seen = []
        event = kernel.schedule_at(1e-9, lambda: seen.append("cancelled"))
        kernel.schedule_at(2e-9, lambda: seen.append("kept"))
        event.cancel()
        kernel.run()
        assert seen == ["kept"]

    def test_run_until_stops_early(self):
        kernel = SimulationKernel()
        seen = []
        kernel.schedule_at(1e-9, lambda: seen.append(1))
        kernel.schedule_at(5e-9, lambda: seen.append(5))
        executed = kernel.run(until=2e-9)
        assert executed == 1
        assert seen == [1]
        assert kernel.pending_events == 1

    def test_event_log_and_reset(self):
        kernel = SimulationKernel()
        kernel.schedule_at(1e-9, lambda: None, label="labelled event")
        kernel.run()
        assert any("labelled event" in line for line in kernel.event_log())
        kernel.reset()
        assert kernel.now == 0.0
        assert kernel.pending_events == 0


class TestSignals:
    def test_history_and_value_at(self):
        signal = Signal("ctrl", initial=0)
        signal.set(1, 1e-9)
        signal.set(2, 2e-9)
        assert signal.value == 2
        assert signal.value_at(1.5e-9) == 1
        assert signal.change_count() == 2

    def test_backwards_drive_rejected(self):
        signal = Signal("ctrl", initial=0)
        signal.set(1, 1e-9)
        with pytest.raises(ValueError):
            signal.set(2, 0.5e-9)

    def test_listeners_invoked(self):
        signal = DigitalSignal("flag")
        seen = []
        signal.on_change(lambda sig, time: seen.append((sig.value, time)))
        signal.set(1, 3e-9)
        assert seen == [(1, 3e-9)]

    def test_analog_signal_waveform(self):
        signal = AnalogSignal("v", initial=1.0)
        signal.set(0.8, 1e-9)
        signal.set(0.6, 2e-9)
        times, values = signal.as_waveform()
        assert times.shape == values.shape == (3,)
        assert signal.max_value() == pytest.approx(1.0)
        assert signal.min_value() == pytest.approx(0.6)


class TestComponents:
    def test_precharge_unit(self):
        kernel = SimulationKernel()
        lines = [AnalogSignal("blb0", 0.2), AnalogSignal("blb1", 0.4)]
        unit = PrechargeUnit(kernel, lines, vdd=1.0, duration=0.5e-9)
        unit.start()
        kernel.run()
        assert all(line.value == pytest.approx(1.0) for line in lines)
        assert unit.done.value == 1

    def test_wordline_driver_settles_to_dac_voltage(self):
        kernel = SimulationKernel()
        driver = WordlineDriver(kernel, LinearDac(v_zero=0.3, v_full_scale=1.0))
        driver.apply(15)
        kernel.run()
        assert driver.wordline.value == pytest.approx(1.0)
        assert driver.settled.value == 1
        driver.release()
        assert driver.wordline.value == pytest.approx(0.0)

    def test_bitline_component_requires_discharge_start(self, suite):
        kernel = SimulationKernel()
        conditions = OperatingConditions(vdd=suite.vdd_nominal, temperature=suite.temperature_nominal)
        bitline = BitlineComponent(kernel, suite, 0, conditions)
        with pytest.raises(RuntimeError):
            bitline.sample()

    def test_sampling_switch_requires_all_branches(self):
        kernel = SimulationKernel()
        switch = SamplingSwitch(kernel, branches=2)
        switch.capture(0, 0.1)
        with pytest.raises(RuntimeError):
            switch.share()
        switch.capture(1, 0.3)
        assert switch.share() == pytest.approx(0.2)
        with pytest.raises(IndexError):
            switch.capture(5, 0.1)

    def test_adc_readout_converts_after_delay(self):
        kernel = SimulationKernel()
        readout = AdcReadout(
            kernel,
            adc=Adc(levels=1000, gain=1e-3),
            scale=1.0,
            offset=0.0,
            product_levels=225,
            conversion_time=1e-9,
        )
        readout.convert(0.1)
        assert readout.result_valid.value == 0
        kernel.run()
        assert readout.result_valid.value == 1
        assert readout.result.value == 100


class TestTestbench:
    def test_matches_direct_model_on_sampled_pairs(self, suite):
        config = MultiplierConfig(tau0=0.16e-9, v_dac_zero=0.3, v_dac_full_scale=1.0, name="tb")
        testbench = MultiplierTestbench(suite, config)
        for x, d in ((0, 0), (1, 15), (7, 9), (15, 15), (3, 12)):
            result = testbench.run_multiply(x, d)
            assert result.product == testbench.model_result(x, d)
            assert result.expected == x * d

    def test_sequence_produces_events_and_advances_time(self, suite):
        config = MultiplierConfig(name="tb2")
        testbench = MultiplierTestbench(suite, config)
        result = testbench.run_multiply(5, 10)
        assert result.executed_events >= 8
        assert result.finish_time > config.max_discharge_time
        assert any("charge share" in line for line in result.event_log)

    def test_run_sweep(self, suite):
        testbench = MultiplierTestbench(suite, MultiplierConfig(name="tb3"))
        results = testbench.run_sweep([(1, 1), (2, 3)])
        assert len(results) == 2
        assert results[1].expected == 6

    def test_out_of_range_operands_rejected(self, suite):
        testbench = MultiplierTestbench(suite, MultiplierConfig(name="tb4"))
        with pytest.raises(ValueError):
            testbench.run_multiply(16, 0)
        with pytest.raises(ValueError):
            testbench.run_multiply(0, -1)

    def test_stochastic_testbench_runs(self, suite, rng):
        testbench = MultiplierTestbench(suite, MultiplierConfig(name="tb5"), rng=rng)
        result = testbench.run_multiply(9, 9)
        assert 0 <= result.product <= 225
