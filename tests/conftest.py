"""Shared fixtures for the test suite.

Expensive artefacts (reference-simulator characterisation, fitted model
suites, trained networks) are session-scoped so the whole suite stays fast:
most tests run against one shared quick calibration rather than re-running
the reference sweeps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import OperatingConditions, TransientSolver, tsmc65_like
from repro.core.calibration import CalibrationResult, calibrate
from repro.core.characterization import CharacterizationPlan
from repro.dnn.datasets import make_synthetic_image_dataset
from repro.multiplier.config import MultiplierConfig
from repro.multiplier.imac import InSramMultiplier


@pytest.fixture(scope="session")
def technology():
    """The default 65 nm-class technology card."""
    return tsmc65_like()


@pytest.fixture(scope="session")
def nominal_conditions(technology):
    """Nominal PVT operating point."""
    return OperatingConditions.nominal(technology)


@pytest.fixture(scope="session")
def solver(technology):
    """Shared reference transient solver."""
    return TransientSolver(technology)


@pytest.fixture(scope="session")
def quick_calibration(technology) -> CalibrationResult:
    """A quick-plan OPTIMA calibration shared by most model-level tests."""
    return calibrate(technology, CharacterizationPlan.quick())


@pytest.fixture(scope="session")
def full_calibration(technology) -> CalibrationResult:
    """The default-plan calibration used by accuracy-sensitive tests."""
    return calibrate(technology)


@pytest.fixture(scope="session")
def suite(full_calibration):
    """Fitted OPTIMA model suite (default plan)."""
    return full_calibration.suite


@pytest.fixture(scope="session")
def quick_suite(quick_calibration):
    """Fitted OPTIMA model suite (quick plan)."""
    return quick_calibration.suite


@pytest.fixture(scope="session")
def fom_config() -> MultiplierConfig:
    """A representative accurate multiplier configuration."""
    return MultiplierConfig(
        tau0=0.16e-9, v_dac_zero=0.3, v_dac_full_scale=1.0, name="fom-test"
    )


@pytest.fixture(scope="session")
def multiplier(suite, fom_config) -> InSramMultiplier:
    """OPTIMA-backed multiplier at the representative configuration."""
    return InSramMultiplier(suite, fom_config)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A tiny 4-class synthetic image dataset for DNN tests."""
    return make_synthetic_image_dataset(
        classes=4,
        train_per_class=25,
        test_per_class=8,
        image_size=8,
        channels=3,
        noise=0.10,
        seed=3,
        name="tiny",
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic random generator per test."""
    return np.random.default_rng(1234)
