"""Shared fixtures for the test suite.

Expensive artefacts (reference-simulator characterisation, fitted model
suites, trained networks) are session-scoped so the whole suite stays fast:
most tests run against one shared quick calibration rather than re-running
the reference sweeps.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np
import pytest

from repro.circuits import OperatingConditions, TransientSolver, tsmc65_like
from repro.core.calibration import CalibrationResult, calibrate
from repro.core.characterization import CharacterizationPlan
from repro.dnn.datasets import make_synthetic_image_dataset
from repro.multiplier.config import MultiplierConfig
from repro.multiplier.imac import InSramMultiplier


@pytest.fixture(scope="session")
def technology():
    """The default 65 nm-class technology card."""
    return tsmc65_like()


@pytest.fixture(scope="session")
def nominal_conditions(technology):
    """Nominal PVT operating point."""
    return OperatingConditions.nominal(technology)


@pytest.fixture(scope="session")
def solver(technology):
    """Shared reference transient solver."""
    return TransientSolver(technology)


@pytest.fixture(scope="session")
def quick_calibration(technology) -> CalibrationResult:
    """A quick-plan OPTIMA calibration shared by most model-level tests."""
    return calibrate(technology, CharacterizationPlan.quick())


@pytest.fixture(scope="session")
def full_calibration(technology) -> CalibrationResult:
    """The default-plan calibration used by accuracy-sensitive tests."""
    return calibrate(technology)


@pytest.fixture(scope="session")
def suite(full_calibration):
    """Fitted OPTIMA model suite (default plan)."""
    return full_calibration.suite


@pytest.fixture(scope="session")
def quick_suite(quick_calibration):
    """Fitted OPTIMA model suite (quick plan)."""
    return quick_calibration.suite


@pytest.fixture(scope="session")
def fom_config() -> MultiplierConfig:
    """A representative accurate multiplier configuration."""
    return MultiplierConfig(
        tau0=0.16e-9, v_dac_zero=0.3, v_dac_full_scale=1.0, name="fom-test"
    )


@pytest.fixture(scope="session")
def multiplier(suite, fom_config) -> InSramMultiplier:
    """OPTIMA-backed multiplier at the representative configuration."""
    return InSramMultiplier(suite, fom_config)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A tiny 4-class synthetic image dataset for DNN tests."""
    return make_synthetic_image_dataset(
        classes=4,
        train_per_class=25,
        test_per_class=8,
        image_size=8,
        channels=3,
        noise=0.10,
        seed=3,
        name="tiny",
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic random generator per test."""
    return np.random.default_rng(1234)


@dataclasses.dataclass(frozen=True)
class ChaosSchedule:
    """One seeded adversarial scheduling regime for the cluster tests.

    Drawn deterministically from a seed, so every trial is reproducible
    from its parametrized id alone.  The base regime (window / probe /
    straggler throttle / worker kill / job count) drives the randomized
    split-steal-death schedules of ``test_cluster``; the multi-tenant
    fields (drawn strictly *after* the base regime, so legacy seeds keep
    their historical draws) add concurrent mixed-priority sweeps, a
    mid-run pool resize and preemption pressure for ``test_sched_chaos``.
    """

    seed: int
    #: Adaptive chunk window in seconds, or ``None`` for static chunks.
    window: Optional[float]
    #: Probe / static chunk size.
    probe: int
    #: Straggler worker's per-job sleep.
    throttle: float
    #: SIGKILL one local worker mid-run.
    kill_one: bool
    #: Jobs in the (batch) sweep.
    count: int
    # --- multi-tenant chaos (test_sched_chaos) ------------------------
    #: Jobs in the concurrently submitted interactive sweep.
    interactive_count: int
    #: Priority of the interactive sweep (outranks the batch sweep).
    interactive_priority: int
    #: Priority of the batch sweep.
    batch_priority: int
    #: Batch progress ticks to wait for before submitting the
    #: interactive sweep (so its spans preempt in-flight batch work).
    interactive_after_done: int
    #: Join one extra throttled worker mid-run (a pool resize).
    resize_mid_run: bool

    @property
    def entropy(self) -> int:
        """Entropy for the sweep's seeded job values."""
        return 9000 + self.seed

    @classmethod
    def draw(cls, seed: int) -> "ChaosSchedule":
        rng = np.random.default_rng(1000 + seed)
        window = float(rng.uniform(0.02, 0.08)) if rng.random() < 0.75 else None
        probe = int(rng.integers(1, 6))
        throttle = float(rng.uniform(0.03, 0.12))
        kill_one = bool(rng.random() < 0.5)
        count = int(rng.integers(16, 28))
        return cls(
            seed=seed,
            window=window,
            probe=probe,
            throttle=throttle,
            kill_one=kill_one,
            count=count,
            interactive_count=int(rng.integers(6, 12)),
            interactive_priority=int(rng.integers(5, 20)),
            batch_priority=int(rng.integers(-3, 1)),
            interactive_after_done=int(rng.integers(2, 5)),
            resize_mid_run=bool(rng.random() < 0.5),
        )


@pytest.fixture()
def chaos_schedule():
    """Factory fixture: ``chaos_schedule(seed)`` draws one seeded regime."""
    return ChaosSchedule.draw
