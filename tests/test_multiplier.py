"""Tests for the OPTIMA-backed and reference in-SRAM multipliers."""

import numpy as np
import pytest

from repro.circuits.conditions import OperatingConditions
from repro.multiplier.config import MultiplierConfig
from repro.multiplier.imac import InSramMultiplier
from repro.multiplier.lut import ProductLookupTable
from repro.multiplier.reference import ReferenceMultiplier


class TestFastMultiplier:
    def test_zero_operands_give_zero(self, multiplier):
        assert int(np.asarray(multiplier.multiply(0, 0))) == 0
        assert int(np.asarray(multiplier.multiply(7, 0))) == 0

    def test_results_within_code_range(self, multiplier):
        x_grid, d_grid = multiplier.input_space()
        results = multiplier.multiply(x_grid, d_grid)
        assert results.min() >= 0
        assert results.max() <= multiplier.config.product_levels

    def test_results_monotone_in_stored_operand(self, multiplier):
        """For a fixed large input, larger stored words discharge more."""
        results = multiplier.multiply(np.full(16, 15), np.arange(16))
        assert np.all(np.diff(results.astype(int)) >= 0)

    def test_reasonable_accuracy_for_accurate_corner(self, multiplier):
        x_grid, d_grid = multiplier.input_space()
        errors = multiplier.multiplication_error(x_grid, d_grid)
        assert float(np.mean(errors)) < 10.0
        # Large products are reproduced within a modest relative error.
        assert float(np.asarray(multiplier.multiply(15, 15))) == pytest.approx(225, abs=30)

    def test_wordline_voltage_follows_dac(self, multiplier):
        assert float(multiplier.wordline_voltage(0)) == pytest.approx(
            multiplier.config.v_dac_zero
        )
        assert float(multiplier.wordline_voltage(15)) == pytest.approx(
            multiplier.config.v_dac_full_scale
        )

    def test_bitline_discharges_shape_and_masking(self, multiplier):
        discharges = multiplier.bitline_discharges(np.array([3, 7]), np.array([0b0101, 0b1111]))
        assert discharges.shape == (2, 4)
        # Bits that store 0 must not discharge.
        assert discharges[0, 1] == pytest.approx(0.0)
        assert discharges[0, 3] == pytest.approx(0.0)
        assert np.all(discharges[1] > 0.0)

    def test_out_of_range_operands_rejected(self, multiplier):
        with pytest.raises(ValueError):
            multiplier.multiply(16, 3)
        with pytest.raises(ValueError):
            multiplier.multiply(3, -1)

    def test_energy_positive_and_ordered(self, suite):
        low_fs = InSramMultiplier(
            suite, MultiplierConfig(v_dac_full_scale=0.7, name="low")
        )
        high_fs = InSramMultiplier(
            suite, MultiplierConfig(v_dac_full_scale=1.0, name="high")
        )
        x_grid, d_grid = low_fs.input_space()
        energy_low = float(np.mean(low_fs.multiplication_energy(x_grid, d_grid)))
        energy_high = float(np.mean(high_fs.multiplication_energy(x_grid, d_grid)))
        assert 0.0 < energy_low < energy_high

    def test_operation_energy_includes_write(self, multiplier):
        x_grid, d_grid = multiplier.input_space()
        multiply_only = float(np.mean(multiplier.multiplication_energy(x_grid, d_grid)))
        full_operation = float(np.mean(multiplier.operation_energy(x_grid, d_grid)))
        assert full_operation > multiply_only

    def test_combined_sigma_grows_with_operands(self, multiplier):
        small = float(multiplier.combined_sigma(3, 3))
        large = float(multiplier.combined_sigma(15, 15))
        assert 0.0 <= small < large

    def test_stochastic_multiply_centred_on_deterministic(self, multiplier, rng):
        deterministic = int(np.asarray(multiplier.multiply(12, 9)))
        samples = multiplier.multiply(
            np.full(300, 12), np.full(300, 9), rng=rng
        )
        assert abs(float(np.mean(samples)) - deterministic) < 12.0
        assert float(np.std(samples.astype(float))) > 0.0

    def test_product_lsb_voltage_positive(self, multiplier):
        assert multiplier.product_lsb_voltage > 0.0

    def test_pvt_conditions_shift_results(self, multiplier, technology):
        nominal = multiplier.multiply(10, 12)
        low_vdd = multiplier.multiply(
            10, 12, conditions=OperatingConditions(vdd=0.9, temperature=300.15)
        )
        assert int(np.asarray(nominal)) != int(np.asarray(low_vdd)) or True
        # At minimum the analogue voltage must change.
        v_nom = float(multiplier.combined_discharge(10, 12))
        v_low = float(
            multiplier.combined_discharge(
                10, 12, conditions=OperatingConditions(vdd=0.9, temperature=300.15)
            )
        )
        assert v_nom != pytest.approx(v_low, abs=1e-6)


class TestReferenceMultiplier:
    def test_agrees_with_fast_model(self, technology, suite, fom_config):
        """The OPTIMA-backed multiplier must track the circuit-level one."""
        reference = ReferenceMultiplier(technology, fom_config)
        fast = InSramMultiplier(suite, fom_config)
        reference_table = reference.multiply_table().astype(float)
        x_grid, d_grid = fast.input_space()
        fast_table = fast.multiply(x_grid, d_grid).astype(float)
        differences = np.abs(reference_table - fast_table)
        assert float(np.mean(differences)) < 6.0
        assert float(np.max(differences)) < 30.0

    def test_characterisation_table_shape(self, technology, fom_config):
        reference = ReferenceMultiplier(technology, fom_config)
        table = reference.characterize_input_space()
        assert table.shape == (16, 4)
        assert np.all(table >= 0.0)
        # Longer (more significant) bit-lines discharge more.
        assert np.all(table[:, 3] >= table[:, 0])

    def test_monte_carlo_characterisation(self, technology, fom_config):
        reference = ReferenceMultiplier(technology, fom_config)
        samples = reference.characterize_monte_carlo(50, seed=1)
        assert samples.shape == (50,)
        assert float(np.std(samples)) > 0.0

    def test_multiply_and_energy(self, technology, fom_config):
        reference = ReferenceMultiplier(technology, fom_config)
        result = int(np.asarray(reference.multiply(9, 11)))
        assert result == pytest.approx(99, abs=25)
        assert float(np.asarray(reference.multiplication_energy(9, 11))) > 0.0
        assert float(np.asarray(reference.operation_energy(9, 11))) > float(
            np.asarray(reference.multiplication_energy(9, 11))
        )


class TestProductLookupTable:
    def test_exact_table_has_zero_error(self):
        table = ProductLookupTable.exact()
        assert table.mean_error_lsb() == pytest.approx(0.0)
        assert float(table.lookup_unsigned(7, 9)) == pytest.approx(63.0)

    def test_from_multiplier_matches_multiplier(self, multiplier):
        table = ProductLookupTable.from_multiplier(multiplier)
        assert float(table.lookup_unsigned(11, 13)) == pytest.approx(
            float(np.asarray(multiplier.multiply(11, 13)))
        )
        assert table.name == multiplier.config.name

    def test_signed_lookup_applies_sign_digitally(self, multiplier):
        table = ProductLookupTable.from_multiplier(multiplier)
        positive = float(table.lookup_signed(5, 6))
        assert float(table.lookup_signed(-5, 6)) == pytest.approx(-positive)
        assert float(table.lookup_signed(-5, -6)) == pytest.approx(positive)
        assert float(table.lookup_signed(0, 6)) == pytest.approx(0.0, abs=1e-9)

    def test_sample_signed_statistics(self, multiplier, rng):
        table = ProductLookupTable.from_multiplier(multiplier)
        samples = table.sample_signed(np.full(500, 9), np.full(500, -8), rng)
        assert float(np.mean(samples)) == pytest.approx(float(table.lookup_signed(9, -8)), abs=5.0)

    def test_serialisation_roundtrip(self, multiplier):
        table = ProductLookupTable.from_multiplier(multiplier)
        clone = ProductLookupTable.from_dict(table.to_dict())
        assert np.allclose(clone.mean, table.mean)
        assert np.allclose(clone.sigma, table.sigma)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProductLookupTable(mean=np.zeros((4, 4)), sigma=np.zeros((4, 4)), max_operand=15)
        with pytest.raises(ValueError):
            ProductLookupTable(
                mean=np.zeros((16, 16)), sigma=-np.ones((16, 16)), max_operand=15
            )
        table = ProductLookupTable.exact()
        with pytest.raises(ValueError):
            table.lookup_unsigned(20, 3)
