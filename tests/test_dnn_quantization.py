"""Tests for INT4 quantisation, batch-norm folding and the IMC backends."""

import numpy as np
import pytest

from repro.dnn.imc_injection import ExactBackend, LutBackend, backends_for_corners
from repro.dnn.layers import BatchNorm, Conv2D, Dense
from repro.dnn.models import build_vgg16_like
from repro.dnn.network import Network
from repro.dnn.quantization import (
    ActivationQuantizer,
    QuantizationScheme,
    QuantizedConv2D,
    QuantizedDense,
    fold_batchnorm_layers,
    quantize_network,
    quantize_weights_symmetric,
)
from repro.dnn.training import TrainingConfig, train_network
from repro.multiplier.lut import ProductLookupTable


class TestQuantizationPrimitives:
    def test_activation_quantizer_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 3.0, 500).astype(np.float32)
        quantizer = ActivationQuantizer.calibrate(values, QuantizationScheme())
        recovered = quantizer.dequantize(quantizer.quantize(values))
        assert float(np.max(np.abs(recovered - values))) <= quantizer.scale * 0.51 + 1e-6

    def test_activation_zero_point_for_relu_data_is_zero(self):
        values = np.abs(np.random.default_rng(1).normal(size=300)).astype(np.float32)
        quantizer = ActivationQuantizer.calibrate(values, QuantizationScheme())
        assert quantizer.zero_point == 0

    def test_weight_quantization_symmetric_range(self):
        rng = np.random.default_rng(2)
        weights = rng.normal(0.0, 0.2, size=(32, 8)).astype(np.float32)
        codes, scales = quantize_weights_symmetric(weights, QuantizationScheme())
        assert codes.min() >= -8 and codes.max() <= 7
        assert scales.shape == (8,)
        reconstructed = codes * scales
        assert float(np.max(np.abs(reconstructed - weights))) <= float(scales.max()) * 0.51

    def test_per_tensor_mode_uses_single_scale(self):
        weights = np.random.default_rng(3).normal(size=(16, 4)).astype(np.float32)
        _, scales = quantize_weights_symmetric(
            weights, QuantizationScheme(per_channel_weights=False)
        )
        assert np.allclose(scales, scales[0])

    def test_invalid_scheme_rejected(self):
        with pytest.raises(ValueError):
            QuantizationScheme(weight_bits=1)
        with pytest.raises(ValueError):
            QuantizationScheme(calibration_percentile=40.0)


class TestBatchNormFolding:
    def test_folding_preserves_inference_output(self):
        rng = np.random.default_rng(4)
        conv = Conv2D(3, 5, kernel=3, rng=rng)
        bn = BatchNorm(5)
        inputs = rng.normal(size=(4, 6, 6, 3)).astype(np.float32)
        # Give the BN non-trivial running statistics.
        for _ in range(10):
            bn.forward(conv.forward(rng.normal(size=(8, 6, 6, 3)).astype(np.float32)), training=True)
        reference = bn.forward(conv.forward(inputs), training=False)
        folded_layers = fold_batchnorm_layers([conv, bn])
        assert len(folded_layers) == 1
        folded_output = folded_layers[0].forward(inputs)
        assert np.allclose(folded_output, reference, atol=1e-4)

    def test_folding_keeps_unpaired_layers(self):
        dense = Dense(4, 2)
        bn = BatchNorm(4)
        layers = fold_batchnorm_layers([bn, dense])
        assert len(layers) == 2


class TestBackends:
    def test_exact_backend_matches_matmul(self):
        rng = np.random.default_rng(5)
        activations = rng.integers(0, 16, size=(6, 10))
        weights = rng.integers(-8, 8, size=(10, 4))
        backend = ExactBackend()
        assert np.allclose(backend.matmul(activations, weights), activations @ weights)

    def test_lut_backend_with_exact_table_matches_exact_backend(self):
        rng = np.random.default_rng(6)
        activations = rng.integers(0, 16, size=(8, 12))
        weights = rng.integers(-8, 8, size=(12, 5))
        lut = LutBackend(ProductLookupTable.exact(), name="exact-lut")
        exact = ExactBackend()
        assert np.allclose(
            lut.matmul(activations, weights), exact.matmul(activations, weights)
        )

    def test_zero_skipping_restores_exact_zero_contributions(self, multiplier):
        table = ProductLookupTable.from_multiplier(multiplier)
        backend = LutBackend(table)
        weights = np.arange(-8, 8).reshape(16, 1)
        activations = np.zeros((1, 16), dtype=int)
        # With zero-skipping, an all-zero activation row accumulates exactly 0.
        accumulated = backend.matmul(activations, weights, activation_zero_point=0)
        assert float(accumulated.item()) == pytest.approx(0.0)

    def test_stochastic_backend_adds_variance(self, multiplier):
        table = ProductLookupTable.from_multiplier(multiplier)
        rng = np.random.default_rng(7)
        noisy = LutBackend(table, stochastic=True, rng=rng)
        activations = np.full((200, 8), 9, dtype=int)
        weights = np.full((8, 1), 7, dtype=int)
        outputs = noisy.matmul(activations, weights)
        assert float(np.std(outputs)) > 0.0
        deterministic = LutBackend(table).matmul(activations[:1], weights)
        assert float(np.mean(outputs)) == pytest.approx(float(deterministic.item()), rel=0.2)

    def test_out_of_range_codes_rejected(self):
        backend = LutBackend(ProductLookupTable.exact())
        with pytest.raises(ValueError):
            backend.matmul(np.array([[17]]), np.array([[1]]))
        with pytest.raises(ValueError):
            backend.matmul(np.array([[1]]), np.array([[9]]))
        with pytest.raises(ValueError):
            backend.matmul(np.array([1]), np.array([[1]]))

    def test_backends_for_corners(self, multiplier):
        table = ProductLookupTable.from_multiplier(multiplier)
        backends = backends_for_corners({"fom": table}, stochastic=False)
        assert set(backends) == {"fom"}
        assert backends["fom"].name == "fom"


class TestQuantizedNetwork:
    @pytest.fixture(scope="class")
    def trained_network(self, tiny_dataset):
        net = build_vgg16_like((8, 8, 3), classes=tiny_dataset.classes)
        train_network(net, tiny_dataset, TrainingConfig(epochs=4, learning_rate=0.08, seed=1))
        return net

    def test_int4_quantisation_close_to_float(self, trained_network, tiny_dataset):
        quantized = quantize_network(trained_network, tiny_dataset.train_images[:64])
        float_scores = trained_network.predict(tiny_dataset.test_images)
        int4_scores = quantized.predict(tiny_dataset.test_images)
        float_top1 = np.mean(np.argmax(float_scores, axis=1) == tiny_dataset.test_labels)
        int4_top1 = np.mean(np.argmax(int4_scores, axis=1) == tiny_dataset.test_labels)
        assert int4_top1 >= float_top1 - 0.2

    def test_quantized_layer_types(self, trained_network, tiny_dataset):
        quantized = quantize_network(trained_network, tiny_dataset.train_images[:64])
        assert any(isinstance(layer, QuantizedConv2D) for layer in quantized.layers)
        assert any(isinstance(layer, QuantizedDense) for layer in quantized.layers)
        # Batch norms are folded away.
        assert not any(isinstance(layer, BatchNorm) for layer in quantized.layers)

    def test_with_backend_rebinds_all_quantized_layers(self, trained_network, tiny_dataset, multiplier):
        quantized = quantize_network(trained_network, tiny_dataset.train_images[:64])
        table = ProductLookupTable.exact()
        rebound = quantized.with_backend(LutBackend(table, name="exact-lut"))
        assert rebound.backend.name == "exact-lut"
        # An exact LUT backend must reproduce the exact-INT4 scores.
        assert np.allclose(
            rebound.predict(tiny_dataset.test_images[:16]),
            quantized.predict(tiny_dataset.test_images[:16]),
            atol=1e-4,
        )

    def test_multiplication_count_carried_over(self, trained_network, tiny_dataset):
        quantized = quantize_network(trained_network, tiny_dataset.train_images[:32])
        assert quantized.multiplication_count() == trained_network.multiplication_count()
