"""Unit tests for Pelgrom mismatch sampling."""

import numpy as np
import pytest

from repro.circuits.mismatch import MismatchParameters, MismatchSample, MismatchSampler
from repro.circuits.technology import tsmc65_like


class TestMismatchParameters:
    def test_from_technology_positive(self):
        params = MismatchParameters.from_technology(tsmc65_like())
        assert params.sigma_vth_access > 0.0
        assert params.sigma_vth_pulldown > 0.0
        assert params.sigma_beta_access > 0.0

    def test_access_device_has_more_mismatch_than_pulldown(self):
        # The access transistor is smaller, so its Pelgrom sigma is larger.
        params = MismatchParameters.from_technology(tsmc65_like())
        assert params.sigma_vth_access > params.sigma_vth_pulldown

    def test_scaled(self):
        params = MismatchParameters.from_technology(tsmc65_like())
        doubled = params.scaled(2.0)
        assert doubled.sigma_vth_access == pytest.approx(2.0 * params.sigma_vth_access)
        with pytest.raises(ValueError):
            params.scaled(-1.0)


class TestMismatchSampler:
    def test_same_seed_same_samples(self):
        params = MismatchParameters.from_technology(tsmc65_like())
        first = MismatchSampler(params, seed=7).samples(5)
        second = MismatchSampler(params, seed=7).samples(5)
        assert all(a == b for a, b in zip(first, second))

    def test_different_seed_different_samples(self):
        params = MismatchParameters.from_technology(tsmc65_like())
        first = MismatchSampler(params, seed=1).sample()
        second = MismatchSampler(params, seed=2).sample()
        assert first != second

    def test_sample_statistics_match_sigma(self):
        params = MismatchParameters.from_technology(tsmc65_like())
        arrays = MismatchSampler(params, seed=0).sample_arrays(4000)
        assert np.std(arrays.vth_access) == pytest.approx(params.sigma_vth_access, rel=0.1)
        assert abs(np.mean(arrays.vth_access)) < params.sigma_vth_access * 0.1

    def test_sample_arrays_indexing(self):
        params = MismatchParameters.from_technology(tsmc65_like())
        arrays = MismatchSampler(params, seed=0).sample_arrays(10)
        assert len(arrays) == 10
        sample = arrays[3]
        assert isinstance(sample, MismatchSample)
        assert sample.vth_access == pytest.approx(arrays.vth_access[3])
        assert len(list(iter(arrays))) == 10

    def test_negative_count_rejected(self):
        params = MismatchParameters.from_technology(tsmc65_like())
        with pytest.raises(ValueError):
            MismatchSampler(params).samples(-1)

    def test_nominal_sample_is_zero(self):
        nominal = MismatchSample.nominal()
        assert nominal.vth_access == 0.0
        assert nominal.beta_pulldown == 0.0
        assert "mV" in nominal.describe()
