"""Tests for the design-space exploration, PVT robustness and speed-up flows."""

import numpy as np
import pytest

from repro.core.dse import DesignSpace, explore_design_space, select_corners
from repro.core.pvt import (
    analyze_corner_robustness,
    analyze_corners,
    monte_carlo_error_distribution,
)
from repro.core.speedup import measure_speedup
from repro.multiplier.config import MultiplierConfig


@pytest.fixture(scope="module")
def quick_exploration(suite):
    return explore_design_space(suite, DesignSpace.quick())


@pytest.fixture(scope="module")
def full_exploration(suite):
    return explore_design_space(suite)


class TestDesignSpace:
    def test_default_grid_has_48_corners(self):
        assert DesignSpace().corner_count == 48
        assert len(list(DesignSpace().configurations())) == 48

    def test_invalid_space_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace(tau0_values=())
        with pytest.raises(ValueError):
            DesignSpace(tau0_values=(-1e-9,))

    def test_inverted_dac_ranges_are_skipped(self):
        space = DesignSpace(
            tau0_values=(0.16e-9,),
            v_dac_zero_values=(0.3, 0.8),
            v_dac_full_scale_values=(0.7,),
        )
        configs = list(space.configurations())
        assert len(configs) == 1


class TestExploration:
    def test_every_corner_evaluated(self, quick_exploration):
        assert len(quick_exploration.points) == quick_exploration.space.corner_count

    def test_selected_corners_have_expected_names(self, quick_exploration):
        corners = quick_exploration.selected_corners()
        assert [corner.name for corner in corners] == ["fom", "power", "variation"]

    def test_power_corner_minimises_energy(self, full_exploration):
        power = full_exploration.lowest_energy()
        energies = [p.energy_per_multiplication for p in full_exploration.points]
        assert power.energy_per_multiplication == pytest.approx(min(energies))

    def test_fom_corner_maximises_figure_of_merit(self, full_exploration):
        fom = full_exploration.best_fom()
        assert fom.figure_of_merit == pytest.approx(
            max(p.figure_of_merit for p in full_exploration.points)
        )

    def test_variation_corner_minimises_relative_sigma(self, full_exploration):
        variation = full_exploration.lowest_variation()
        assert variation.relative_sigma_at_max_discharge == pytest.approx(
            min(p.relative_sigma_at_max_discharge for p in full_exploration.points)
        )

    def test_fom_differs_from_power_on_full_grid(self, full_exploration):
        """The paper selects distinct fom and power corners; so do we."""
        fom = full_exploration.best_fom().config
        power = full_exploration.lowest_energy().config
        assert (fom.tau0, fom.v_dac_zero, fom.v_dac_full_scale) != (
            power.tau0,
            power.v_dac_zero,
            power.v_dac_full_scale,
        )

    def test_pareto_front_is_non_dominated(self, quick_exploration):
        front = quick_exploration.pareto_front()
        assert front
        for candidate in front:
            for other in quick_exploration.points:
                strictly_better = (
                    other.mean_error_lsb < candidate.mean_error_lsb
                    and other.energy_per_multiplication < candidate.energy_per_multiplication
                )
                assert not strictly_better

    def test_slices_filter_correctly(self, full_exploration):
        space = full_exploration.space
        slice_fs = full_exploration.slice_by_full_scale(
            space.tau0_values[0], space.v_dac_zero_values[0]
        )
        assert len(slice_fs) == len(space.v_dac_full_scale_values)
        assert all(
            point.config.tau0 == pytest.approx(space.tau0_values[0]) for point in slice_fs
        )
        slice_tau = full_exploration.slice_by_tau0(
            space.v_dac_zero_values[0], space.v_dac_full_scale_values[-1]
        )
        assert len(slice_tau) == len(space.tau0_values)

    def test_fig7_trends(self, full_exploration):
        """Energy grows with V_DAC,FS; accuracy does not get worse."""
        space = full_exploration.space
        points = full_exploration.slice_by_full_scale(
            space.tau0_values[0], space.v_dac_zero_values[0]
        )
        energies = [p.energy_per_multiplication for p in points]
        errors = [p.mean_error_lsb for p in points]
        assert np.all(np.diff(energies) > 0.0)
        assert errors[-1] <= errors[0] + 0.5

    def test_table_and_describe(self, quick_exploration):
        rows = quick_exploration.table()
        assert len(rows) == len(quick_exploration.points)
        assert "eps_mul_lsb" in rows[0]
        assert "fom" in quick_exploration.describe()

    def test_select_corners_mapping(self, quick_exploration):
        corners = select_corners(quick_exploration)
        assert set(corners) == {"fom", "power", "variation"}
        assert all(isinstance(config, MultiplierConfig) for config in corners.values())
        assert corners["fom"].name == "fom"


class TestCornerRobustness:
    def test_report_structure(self, suite, fom_config):
        report = analyze_corner_robustness(
            suite,
            fom_config,
            supply_voltages=(0.9, 1.0, 1.1),
            temperatures_celsius=(0.0, 27.0, 70.0),
        )
        assert report.transfer.expected.shape == report.transfer.mean_result.shape
        assert report.supply_sweep.values.shape == (3,)
        assert report.temperature_sweep.values.shape == (3,)
        assert report.nominal_error_lsb >= 0.0
        assert "eps" in report.describe()

    def test_off_nominal_conditions_increase_error(self, suite, fom_config):
        report = analyze_corner_robustness(
            suite,
            fom_config,
            supply_voltages=(0.9, 1.0, 1.1),
            temperatures_celsius=(0.0, 27.0, 70.0),
        )
        nominal_error = report.nominal_error_lsb
        assert max(report.supply_sweep.mean_error_lsb) >= nominal_error
        assert max(report.temperature_sweep.mean_error_lsb) >= nominal_error
        assert report.supply_sweep.error_span() >= 0.0
        worst_value, worst_error = report.temperature_sweep.worst_case()
        assert worst_error == pytest.approx(max(report.temperature_sweep.mean_error_lsb))

    def test_analyze_corners_mapping(self, suite, fom_config):
        reports = analyze_corners(
            suite,
            {"a": fom_config, "b": fom_config.renamed("b")},
            supply_voltages=(1.0,),
            temperatures_celsius=(27.0,),
        )
        assert set(reports) == {"a", "b"}

    def test_monte_carlo_error_distribution(self, suite, fom_config):
        errors = monte_carlo_error_distribution(suite, fom_config, samples=20, seed=1)
        assert errors.shape == (20,)
        assert np.all(errors >= 0.0)
        assert float(np.std(errors)) > 0.0
        with pytest.raises(ValueError):
            monte_carlo_error_distribution(suite, fom_config, samples=0)


class TestSpeedup:
    def test_optima_is_faster_than_reference(self, technology, suite):
        report = measure_speedup(
            technology, suite, input_space_repetitions=1, monte_carlo_samples=30
        )
        assert report.input_space_speedup > 1.0
        assert report.monte_carlo_speedup > 1.0
        assert "x" in report.describe()

    def test_invalid_arguments_rejected(self, technology, suite):
        with pytest.raises(ValueError):
            measure_speedup(technology, suite, input_space_repetitions=0)
        with pytest.raises(ValueError):
            measure_speedup(technology, suite, monte_carlo_samples=0)
