"""Tests for the DAC / ADC / sampling-network periphery."""

import numpy as np
import pytest

from repro.converters.adc import Adc, effective_number_of_bits, required_adc_levels
from repro.converters.dac import LinearDac, NonlinearCompensatingDac, build_dac
from repro.converters.sampling import ChargeSharingCombiner, SamplingNetwork


class TestLinearDac:
    def test_endpoints(self):
        dac = LinearDac(bits=4, v_zero=0.3, v_full_scale=1.0)
        assert float(dac.voltage(0)) == pytest.approx(0.3)
        assert float(dac.voltage(15)) == pytest.approx(1.0)

    def test_monotonic_and_uniform(self):
        dac = LinearDac(bits=4, v_zero=0.3, v_full_scale=1.0)
        voltages = dac.voltage(np.arange(16))
        steps = np.diff(voltages)
        assert np.all(steps > 0.0)
        assert np.allclose(steps, steps[0])

    def test_out_of_range_codes_clipped(self):
        dac = LinearDac()
        assert float(dac.voltage(100)) == pytest.approx(dac.v_full_scale)
        assert float(dac.voltage(-3)) == pytest.approx(dac.v_zero)

    def test_inverse_transfer(self):
        dac = LinearDac(bits=4, v_zero=0.3, v_full_scale=1.0)
        codes = np.arange(16)
        assert np.array_equal(dac.code_for_voltage(dac.voltage(codes)), codes)

    def test_conversion_energy_grows_with_code(self):
        dac = LinearDac()
        energies = dac.conversion_energy(np.arange(16))
        assert np.all(np.diff(energies) > 0.0)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            LinearDac(v_zero=1.0, v_full_scale=0.5)
        with pytest.raises(ValueError):
            LinearDac(bits=0)


class TestNonlinearDac:
    def test_reduces_to_linear_at_exponent_one(self):
        linear = LinearDac(bits=4, v_zero=0.3, v_full_scale=1.0)
        shaped = NonlinearCompensatingDac(linear, exponent=1.0)
        codes = np.arange(16)
        assert np.allclose(shaped.voltage(codes), linear.voltage(codes))

    def test_predistortion_lifts_low_codes(self):
        linear = LinearDac(bits=4, v_zero=0.3, v_full_scale=1.0)
        shaped = NonlinearCompensatingDac(linear, exponent=1.5)
        # Pre-distortion pushes mid codes to higher voltages while keeping
        # the endpoints fixed.
        assert float(shaped.voltage(0)) == pytest.approx(0.3)
        assert float(shaped.voltage(15)) == pytest.approx(1.0)
        assert float(shaped.voltage(5)) > float(linear.voltage(5))

    def test_build_dac_factory(self):
        assert isinstance(build_dac(0.3, 1.0), LinearDac)
        assert isinstance(build_dac(0.3, 1.0, nonlinear_exponent=1.3), NonlinearCompensatingDac)

    def test_invalid_exponent_rejected(self):
        with pytest.raises(ValueError):
            NonlinearCompensatingDac(LinearDac(), exponent=0.0)


class TestAdc:
    def test_quantize_and_reconstruct(self):
        adc = Adc(levels=225, gain=1e-3, offset=0.0)
        assert int(adc.quantize(0.1)) == 100
        assert float(adc.reconstruct(100)) == pytest.approx(0.1)

    def test_clipping(self):
        adc = Adc(levels=10, gain=1e-3)
        assert int(adc.quantize(1.0)) == 10
        assert int(adc.quantize(-1.0)) == 0

    def test_quantization_error_bounded_by_half_lsb(self):
        adc = Adc(levels=225, gain=1e-3)
        voltages = np.linspace(0.0, 0.2, 333)
        errors = adc.quantization_error(voltages)
        assert float(np.max(np.abs(errors))) <= adc.lsb / 2.0 + 1e-12

    def test_calibrated_fit(self):
        codes = np.arange(226, dtype=float)
        voltages = 2e-3 * codes + 5e-3
        adc = Adc.calibrated(voltages, codes, levels=225)
        assert adc.gain == pytest.approx(2e-3, rel=1e-6)
        assert adc.offset == pytest.approx(5e-3, abs=1e-9)
        assert np.array_equal(adc.quantize(voltages), codes.astype(int))

    def test_calibrated_degenerate_input(self):
        adc = Adc.calibrated(np.zeros(10), np.arange(10), levels=9)
        assert adc.gain > 0.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            Adc(levels=0)
        with pytest.raises(ValueError):
            Adc(gain=0.0)

    def test_helpers(self):
        assert required_adc_levels((4, 4)) == 225
        assert effective_number_of_bits(1.0, 1.0 / 2**8) > 7.0
        with pytest.raises(ValueError):
            required_adc_levels((0, 4))

    def test_describe(self):
        assert "levels" in Adc().describe()


class TestSamplingNetworks:
    def test_charge_sharing_is_average(self):
        combiner = ChargeSharingCombiner(branches=4)
        voltages = np.array([0.9, 0.8, 0.7, 0.6])
        assert float(combiner.combine(voltages)) == pytest.approx(0.75)

    def test_combined_sigma_reduces_with_branches(self):
        combiner = ChargeSharingCombiner(branches=4)
        sigma = float(combiner.combined_sigma(np.full(4, 10e-3)))
        assert sigma == pytest.approx(5e-3)

    def test_sampling_energy_positive(self):
        combiner = ChargeSharingCombiner(branches=4)
        energy = float(combiner.sampling_energy(np.array([0.9, 0.8, 0.7, 0.6]), vdd=1.0))
        assert energy > 0.0

    def test_wrong_branch_count_rejected(self):
        combiner = ChargeSharingCombiner(branches=4)
        with pytest.raises(ValueError):
            combiner.combine(np.ones(3))

    def test_weighted_network_matches_equal_case(self):
        equal = SamplingNetwork.equal(4)
        combiner = ChargeSharingCombiner(branches=4)
        voltages = np.array([0.9, 0.85, 0.8, 0.75])
        assert float(equal.combine(voltages)) == pytest.approx(float(combiner.combine(voltages)))

    def test_weighted_network_weights_normalised(self):
        network = SamplingNetwork(capacitances=(1e-15, 3e-15))
        assert np.allclose(network.weights, [0.25, 0.75])

    def test_mismatched_network_stays_close_to_nominal(self):
        rng = np.random.default_rng(0)
        network = SamplingNetwork.with_mismatch(4, 8e-15, relative_sigma=0.02, rng=rng)
        voltages = np.array([0.9, 0.8, 0.7, 0.6])
        assert float(network.combine(voltages)) == pytest.approx(0.75, abs=0.01)

    def test_invalid_networks_rejected(self):
        with pytest.raises(ValueError):
            SamplingNetwork(capacitances=())
        with pytest.raises(ValueError):
            SamplingNetwork(capacitances=(1e-15, -1e-15))
        with pytest.raises(ValueError):
            ChargeSharingCombiner(branches=0)
