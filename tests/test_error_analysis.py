"""Tests for the input-space error / energy / sigma analysis."""

import numpy as np
import pytest

from repro.multiplier.error_analysis import analyze_input_space, group_by_expected_product
from repro.multiplier.imac import InSramMultiplier
from repro.multiplier.config import MultiplierConfig


@pytest.fixture(scope="module")
def analysis(suite, fom_config):
    return analyze_input_space(InSramMultiplier(suite, fom_config))


class TestInputSpaceAnalysis:
    def test_shapes(self, analysis):
        assert analysis.expected.shape == (16, 16)
        assert analysis.results.shape == (16, 16)
        assert analysis.errors.shape == (16, 16)
        assert analysis.analog_sigma.shape == (16, 16)

    def test_scalar_metrics_consistent(self, analysis):
        assert analysis.mean_error_lsb == pytest.approx(float(np.mean(analysis.errors)))
        assert analysis.max_error_lsb >= analysis.mean_error_lsb
        assert analysis.rms_error_lsb >= analysis.mean_error_lsb * 0.5
        assert analysis.energy_per_operation > analysis.energy_per_multiplication
        assert analysis.adc_lsb > 0.0

    def test_figure_of_merit_positive(self, analysis):
        assert analysis.figure_of_merit > 0.0

    def test_sigma_metrics(self, analysis):
        assert analysis.sigma_at_max_discharge >= 0.0
        assert analysis.worst_sigma_mv >= analysis.sigma_at_max_discharge * 1e3 - 1e-9
        assert 0.0 <= analysis.relative_sigma_at_max_discharge < 1.0

    def test_small_operand_error(self, analysis):
        full = analysis.mean_error_lsb
        small = analysis.small_operand_error(threshold=4)
        assert small >= 0.0
        # The metric only looks at a subset, so it differs from the mean.
        assert small != pytest.approx(full, rel=1e-12) or small == 0.0

    def test_summary_keys(self, analysis):
        summary = analysis.summary()
        for key in (
            "mean_error_lsb",
            "energy_per_multiplication_fj",
            "figure_of_merit",
            "small_operand_error_lsb",
        ):
            assert key in summary

    def test_describe(self, analysis):
        assert "eps_mul" in analysis.describe()


class TestGroupByExpectedProduct:
    def test_grouping_covers_all_products(self, analysis):
        expected, mean_results, sigma_lsb, mean_errors = group_by_expected_product(analysis)
        products = {int(x * d) for x in range(16) for d in range(16)}
        assert set(expected.astype(int)) == products
        assert mean_results.shape == expected.shape
        assert sigma_lsb.shape == expected.shape
        assert mean_errors.shape == expected.shape

    def test_transfer_is_roughly_linear(self, analysis):
        expected, mean_results, _, _ = group_by_expected_product(analysis)
        correlation = np.corrcoef(expected, mean_results)[0, 1]
        assert correlation > 0.99

    def test_zero_product_maps_to_small_result(self, analysis):
        expected, mean_results, _, _ = group_by_expected_product(analysis)
        assert float(mean_results[expected == 0.0].item()) < 10.0


class TestCornerOrdering:
    def test_higher_full_scale_is_more_accurate_and_more_expensive(self, suite):
        low = analyze_input_space(
            InSramMultiplier(suite, MultiplierConfig(v_dac_full_scale=0.7, name="low"))
        )
        high = analyze_input_space(
            InSramMultiplier(suite, MultiplierConfig(v_dac_full_scale=1.0, name="high"))
        )
        assert high.mean_error_lsb <= low.mean_error_lsb
        assert high.energy_per_multiplication > low.energy_per_multiplication

    def test_tau0_mainly_costs_energy(self, suite):
        short = analyze_input_space(
            InSramMultiplier(suite, MultiplierConfig(tau0=0.16e-9, name="short"))
        )
        long = analyze_input_space(
            InSramMultiplier(suite, MultiplierConfig(tau0=0.25e-9, name="long"))
        )
        assert long.energy_per_multiplication > short.energy_per_multiplication
        # Accuracy moves much less than energy (paper: "minimal influence").
        assert abs(long.mean_error_lsb - short.mean_error_lsb) < 3.0
