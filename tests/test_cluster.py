"""Tests for the distributed worker backend (:mod:`repro.cluster`).

Covers the tentpole guarantees:

* the shared NDJSON framing lives in :mod:`repro.wire` and the service
  protocol re-exports it (one tested implementation);
* job chunks survive the pickle transport with cache codecs stripped;
* ``make_executor("distributed")`` produces **bit-identical** results to
  the serial executor, merged in submission order whatever the dispatch
  schedule or work stealing;
* a worker killed mid-sweep has its chunks reassigned, the sweep completes
  bit-identically and progress totals stay correct;
* a *job* exception propagates to the submitting call site (the worker
  survives);
* engine-side cache hits are resolved before dispatch — warm shards never
  reach a worker;
* the sharded Monte-Carlo panel equals the unsharded one bit-for-bit,
  serial or distributed, directly and through the service workload;
* the adaptive scheduler (protocol v3): ``chunk_window`` sizing from EWMA
  telemetry, straggler splits with partial-completion acks, and — the
  determinism tentpole — randomized resize/split/steal/death schedules on
  heterogeneous (throttled) pools still merging bit-identically to serial;
* the ``cluster status`` / ``cache info --json`` CLI surfaces work.

Worker subprocesses unpickle job functions by module name; the executor
propagates the submitter's ``sys.path``, which is what makes this test
module importable on the worker side.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro import wire
from repro.analysis.pvt_sweeps import mismatch_monte_carlo, mismatch_monte_carlo_sharded
from repro.circuits.technology import tsmc65_like
from repro.cluster import DistributedExecutor, fetch_status, parse_address
from repro.cluster import protocol as cluster_protocol
from repro.runtime import (
    Artifact,
    ArtifactCache,
    Job,
    SerialExecutor,
    SweepEngine,
    SweepSpec,
    job_key,
    make_executor,
)
from repro.runtime.cli import main as cli_main
from repro.service import protocol as service_protocol
from repro.service.workloads import run_montecarlo

START_TIMEOUT = 60.0


# ----------------------------------------------------------------------
# Module-level job bodies (picklable by reference on the worker side)
# ----------------------------------------------------------------------
def _square(value: int) -> int:
    return value * value


def _seeded_value(entropy: int, index: int) -> float:
    """Deterministic float derived from a spawned SeedSequence child."""
    child = np.random.SeedSequence(entropy).spawn(index + 1)[index]
    return float(np.random.default_rng(child).standard_normal())


def _nap(seconds: float, value: int) -> int:
    time.sleep(seconds)
    return value


def _slow_seeded(entropy: int, index: int, seconds: float) -> float:
    """Seeded deterministic float whose wall time is tunable."""
    time.sleep(seconds)
    return _seeded_value(entropy, index)


def _boom(message: str) -> None:
    raise ValueError(message)


def _huge_array(count: int) -> np.ndarray:
    return np.zeros(count)


def _huge_pickled(count: int) -> dict:
    """A non-array result, so it must take the pickled transport (the
    protocol-v5 binary frame only covers all-array result lists)."""
    return {"blob": np.zeros(count)}


def _seeded_array(entropy: int, index: int, count: int) -> np.ndarray:
    """Deterministic array result large enough to exercise the binary /
    shared-memory completion transports."""
    child = np.random.SeedSequence(entropy).spawn(index + 1)[index]
    return np.random.default_rng(child).standard_normal(count)


def _array_sum(values: np.ndarray) -> float:
    return float(values.sum())


def _seeded_jobs(count: int) -> list:
    return [
        Job(fn=_seeded_value, args=(1234, i), name=f"seeded[{i}]") for i in range(count)
    ]


@pytest.fixture(scope="module")
def cluster():
    """A two-worker local cluster shared by the non-destructive tests."""
    executor = DistributedExecutor(workers=2, chunksize=1, start_timeout=START_TIMEOUT)
    executor.start()
    if executor._fallback is not None:
        pytest.skip("cluster cannot start in this environment")
    yield executor
    executor.close()


# ----------------------------------------------------------------------
# Shared wire framing (satellite: extraction into repro.wire)
# ----------------------------------------------------------------------
class TestSharedWire:
    def test_service_protocol_reexports_wire(self):
        assert service_protocol.encode_message is wire.encode_message
        assert service_protocol.decode_message is wire.decode_message
        assert service_protocol.read_message is wire.read_message
        assert service_protocol.ProtocolError is wire.ProtocolError
        assert service_protocol.MAX_MESSAGE_BYTES == wire.MAX_MESSAGE_BYTES

    def test_round_trip_and_guards(self):
        message = {"op": "hello", "slots": 2}
        assert wire.decode_message(wire.encode_message(message)) == message
        with pytest.raises(wire.ProtocolError):
            wire.decode_message(b"[1, 2]\n")
        with pytest.raises(wire.ProtocolError):
            wire.encode_message({"blob": "x" * wire.MAX_MESSAGE_BYTES})


class TestJobTransport:
    def test_pack_strips_cache_codecs(self):
        job = Job(
            fn=_square,
            args=(3,),
            name="sq",
            key=job_key("transport-test", 3),
            encode=lambda result: Artifact(arrays={"x": np.asarray([result])}),
            decode=lambda artifact: int(artifact.arrays["x"][0]),
        )
        [restored] = cluster_protocol.unpack_jobs(cluster_protocol.pack_jobs([job]))
        assert restored.run() == 9
        assert restored.key is None and restored.encode is None and restored.decode is None

    def test_exception_transport_preserves_type(self):
        blob = cluster_protocol.pack_exception(ValueError("deliberate"))
        recovered = cluster_protocol.unpack_exception(blob, "fallback")
        assert isinstance(recovered, ValueError)
        assert "deliberate" in str(recovered)
        degraded = cluster_protocol.unpack_exception(None, "fallback text")
        assert isinstance(degraded, RuntimeError)
        assert "fallback text" in str(degraded)

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7500") == ("127.0.0.1", 7500)
        for bad in ("nohost", "host:", "host:notaport", "host:0", ":99"):
            with pytest.raises(ValueError):
                parse_address(bad)


# ----------------------------------------------------------------------
# Executor registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_make_distributed(self):
        executor = make_executor("distributed", workers=1, chunksize=2)
        assert isinstance(executor, DistributedExecutor)
        assert executor.workers == 1 and executor.chunksize == 2
        executor.close()  # never started: a no-op

    def test_irrelevant_options_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            make_executor("distributed", batch_size=4)
        with pytest.raises(ValueError, match="does not accept"):
            make_executor("serial", connect="127.0.0.1:7500")

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            make_executor("distributed", workers=-1)
        with pytest.raises(ValueError):
            make_executor("distributed", connect="not-an-address")
        with pytest.raises(ValueError):
            DistributedExecutor(workers=0)  # no local spawn and nowhere to join

    def test_cli_rejects_irrelevant_engine_flags(self, capsys):
        code = cli_main(
            ["run", "dse", "--fast", "--quiet", "--executor", "distributed", "--batch-size", "4"]
        )
        assert code == 2
        assert "--batch-size" in capsys.readouterr().err
        code = cli_main(
            ["run", "dse", "--fast", "--quiet", "--connect", "127.0.0.1:7500"]
        )
        assert code == 2
        assert "--connect" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Distributed execution
# ----------------------------------------------------------------------
class TestDistributedExecution:
    def test_bit_identical_to_serial(self, cluster):
        jobs = _seeded_jobs(24)
        serial = SerialExecutor().execute(_seeded_jobs(24))
        distributed = cluster.execute(jobs)
        assert distributed == serial  # exact float equality, in order

    def test_progress_is_monotonic_and_complete(self, cluster):
        ticks = []
        jobs = [Job(fn=_square, args=(i,), name=f"sq[{i}]") for i in range(16)]
        results = cluster.execute(jobs, progress=lambda d, t, l: ticks.append((d, t)))
        assert results == [i * i for i in range(16)]
        assert ticks[-1] == (16, 16)
        done_values = [done for done, _ in ticks]
        assert done_values == sorted(done_values)
        assert all(total == 16 for _, total in ticks)

    def test_job_exception_propagates_and_cluster_survives(self, cluster):
        jobs = [Job(fn=_square, args=(1,), name="ok")] + [
            Job(fn=_boom, args=("deliberate job failure",), name="bad")
        ]
        with pytest.raises(ValueError, match="deliberate job failure"):
            cluster.execute(jobs)
        # the workers survived the job failure and keep serving
        assert cluster.execute(_seeded_jobs(6)) == SerialExecutor().execute(_seeded_jobs(6))
        assert cluster.status()["alive_workers"] == 2

    def test_oversized_pickled_result_fails_instead_of_hanging(self, cluster):
        """A chunk whose *pickled* results exceed the frame limit must fail
        the sweep with a diagnosis — never leave it waiting on the chunk
        forever.  (All-array results escape this limit via the protocol-v5
        binary frame, so the oversize result here is a dict.)"""
        count = 2_000_000  # 16 MB of float64 -> > MAX_MESSAGE_BYTES once framed
        jobs = [
            Job(fn=_huge_pickled, args=(count,), name="huge"),
            Job(fn=_square, args=(2,), name="ok"),
        ]
        with pytest.raises(Exception, match="frame limit"):
            cluster.execute(jobs)
        # the workers survived and keep serving
        assert cluster.execute(_seeded_jobs(4)) == SerialExecutor().execute(_seeded_jobs(4))

    def test_oversized_array_results_ship_binary_instead_of_failing(self, cluster):
        """The same 16 MB array that used to overflow the pickled frame now
        rides the protocol-v5 binary / shared-memory completion — the sweep
        succeeds and stays bit-identical to serial."""
        jobs = [
            Job(fn=_seeded_array, args=(77, i, 2_000_000), name=f"wide[{i}]")
            for i in range(2)
        ]
        results = cluster.execute(jobs)
        expected = SerialExecutor().execute(
            [Job(fn=_seeded_array, args=(77, i, 2_000_000), name=f"wide[{i}]") for i in range(2)]
        )
        assert len(results) == 2
        for got, want in zip(results, expected):
            assert got.dtype == want.dtype and got.shape == want.shape
            assert got.tobytes() == want.tobytes()

    def test_oversized_job_chunk_fails_instead_of_freezing(self, cluster):
        """A chunk too large to *dispatch* fails its run and leaves the
        scheduler alive for subsequent sweeps."""
        big = np.zeros(2_000_000)
        jobs = [Job(fn=_array_sum, args=(big,), name=f"big[{i}]") for i in range(2)]
        with pytest.raises(Exception, match="cannot dispatch"):
            cluster.execute(jobs)
        assert cluster.execute(_seeded_jobs(4)) == SerialExecutor().execute(_seeded_jobs(4))
        assert cluster.status()["alive_workers"] == 2

    def test_oversized_chunk_refits_instead_of_failing(self):
        """A multi-job chunk over the frame limit is halved and requeued:
        the sweep completes as long as each single job fits."""
        executor = DistributedExecutor(workers=1, chunksize=2, start_timeout=START_TIMEOUT)
        executor.start()
        if executor._fallback is not None:
            pytest.skip("cluster cannot start in this environment")
        try:
            # One job's array pickles+base64s to ~5.3 MB (fits the 8 MiB
            # frame); the 2-job chunk the chunksize asks for does not.
            jobs = [
                Job(fn=_array_sum, args=(np.full(500_000, float(i)),), name=f"fat[{i}]")
                for i in range(4)
            ]
            assert executor.execute(jobs) == [500_000.0 * i for i in range(4)]
            assert executor.status()["stats"]["chunks_refitted"] >= 1
        finally:
            executor.close()

    def test_oversized_results_refit_instead_of_failing(self):
        """The symmetric case: job *inputs* are tiny but a multi-job
        chunk's pickled results overflow the frame — the worker tags the
        failure results_overflow and the coordinator refits.  (Dict
        results, so the v5 binary frame cannot rescue them.)"""
        executor = DistributedExecutor(workers=1, chunksize=2, start_timeout=START_TIMEOUT)
        executor.start()
        if executor._fallback is not None:
            pytest.skip("cluster cannot start in this environment")
        try:
            jobs = [Job(fn=_huge_pickled, args=(500_000,), name=f"out[{i}]") for i in range(4)]
            results = executor.execute(jobs)
            assert len(results) == 4
            assert all(r["blob"].shape == (500_000,) for r in results)
            assert executor.status()["stats"]["chunks_refitted"] >= 1
        finally:
            executor.close()

    def test_shm_disabled_worker_falls_back_to_socket_binary(self, monkeypatch):
        """REPRO_SHM_MIN_BYTES=-1 disables the shared-memory handoff: large
        array results then cross the socket as binary frames, bit-identical
        to the SHM path and to serial."""
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "-1")
        executor = DistributedExecutor(workers=1, chunksize=1, start_timeout=START_TIMEOUT)
        executor.start()
        if executor._fallback is not None:
            pytest.skip("cluster cannot start in this environment")
        try:
            jobs = [
                Job(fn=_seeded_array, args=(99, i, 400_000), name=f"sock[{i}]")
                for i in range(3)
            ]
            results = executor.execute(jobs)
        finally:
            executor.close()
        expected = SerialExecutor().execute(
            [Job(fn=_seeded_array, args=(99, i, 400_000), name=f"sock[{i}]") for i in range(3)]
        )
        assert [r.tobytes() for r in results] == [e.tobytes() for e in expected]

    def test_single_job_runs_inline(self, cluster):
        before = cluster.status()["stats"]["chunks_dispatched"]
        assert cluster.execute([Job(fn=_square, args=(7,), name="one")]) == [49]
        assert cluster.status()["stats"]["chunks_dispatched"] == before

    def test_engine_cache_hits_never_reach_workers(self, cluster, tmp_path):
        engine = SweepEngine(cluster, cache=ArtifactCache(tmp_path / "cache"))

        def build(value):
            return Job(
                fn=_square,
                args=(value,),
                name=f"sq[{value}]",
                key=job_key("cluster-cache-test", value),
                encode=lambda result: Artifact(arrays={"x": np.asarray([result])}),
                decode=lambda artifact: int(artifact.arrays["x"][0]),
            )

        cold = engine.run(SweepSpec("cache-test", [build(i) for i in range(8)]))
        dispatched_after_cold = cluster.status()["stats"]["jobs_done"]
        warm = engine.run(SweepSpec("cache-test", [build(i) for i in range(8)]))
        assert warm == cold == [i * i for i in range(8)]
        # the warm sweep was resolved engine-side: no job crossed the wire
        assert cluster.status()["stats"]["jobs_done"] == dispatched_after_cold
        assert engine.stats.cache_hits == 8

    def test_status_document_and_cli(self, cluster, capsys):
        host, port = cluster.address
        status = fetch_status(f"{host}:{port}", timeout=10.0)
        assert status["alive_workers"] == 2
        assert status["protocol"] == cluster_protocol.CLUSTER_PROTOCOL_VERSION
        assert status["version"] == repro.__version__
        assert len([w for w in status["workers"] if w["alive"]]) == 2
        assert {w["pid"] for w in status["workers"] if w["alive"]} == set(
            cluster.worker_pids
        )

        assert cli_main(["cluster", "status", "--connect", f"{host}:{port}", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["alive_workers"] == 2
        assert cli_main(["cluster", "status", "--connect", f"{host}:{port}"]) == 0
        text = capsys.readouterr().out
        assert "2 alive" in text and "jobs done" in text

    def test_status_unreachable_endpoint_fails_cleanly(self, capsys):
        assert (
            cli_main(
                ["cluster", "status", "--connect", "127.0.0.1:1", "--connect-timeout", "0.2"]
            )
            == 2
        )
        assert "cannot reach cluster" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Worker failure: kill a worker mid-sweep (satellite)
# ----------------------------------------------------------------------
class TestWorkerFailure:
    def test_killed_worker_chunks_are_reassigned(self):
        executor = DistributedExecutor(
            workers=2,
            chunksize=1,
            heartbeat_timeout=2.5,
            start_timeout=START_TIMEOUT,
        )
        executor.start()
        if executor._fallback is not None:
            pytest.skip("cluster cannot start in this environment")
        try:
            count = 24
            victim = executor.worker_pids[0]
            killed = []
            ticks = []

            def progress(done: int, total: int, label: str) -> None:
                ticks.append((done, total))
                if done == 2 and not killed:
                    os.kill(victim, signal.SIGKILL)
                    killed.append(victim)

            jobs = [Job(fn=_nap, args=(0.12, i), name=f"nap[{i}]") for i in range(count)]
            results = executor.execute(jobs, progress=progress)

            # the sweep completed bit-identically to serial despite the kill
            assert killed, "the victim worker was never killed"
            assert results == list(range(count))
            # progress stayed monotonic against the full total and finished
            assert ticks[-1] == (count, count)
            done_values = [done for done, _ in ticks]
            assert done_values == sorted(done_values)
            assert all(total == count for _, total in ticks)
            # the coordinator recorded the death and the reassignments
            status = executor.status()
            assert status["alive_workers"] == 1
            assert status["stats"]["workers_lost"] == 1
            assert status["stats"]["chunks_retried"] >= 1
            assert status["stats"]["jobs_done"] >= count
        finally:
            executor.close()

    def test_failed_start_warns_and_fallback_resets_on_restart(self):
        """An unavailable cluster warns audibly and degrades to serial; a
        later successful restart routes sweeps to real workers again."""
        executor = DistributedExecutor(
            workers=0, connect="127.0.0.1:65413", min_workers=1, start_timeout=1.0
        )
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            executor.start()
        assert executor._fallback is not None
        assert executor.execute(_seeded_jobs(4)) == SerialExecutor().execute(_seeded_jobs(4))
        executor.close()

        # reconfigure to something startable and restart
        executor.workers = 1
        executor.connect = None
        executor.start_timeout = START_TIMEOUT
        executor.start()
        if executor._fallback is not None:
            pytest.skip("cluster cannot start in this environment")
        try:
            assert executor.execute(_seeded_jobs(4)) == SerialExecutor().execute(
                _seeded_jobs(4)
            )
            assert executor.status()["alive_workers"] == 1
        finally:
            executor.close()

    def test_all_workers_dead_fails_instead_of_hanging(self):
        executor = DistributedExecutor(
            workers=1,
            chunksize=1,
            heartbeat_timeout=2.0,
            start_timeout=START_TIMEOUT,
        )
        executor.start()
        if executor._fallback is not None:
            pytest.skip("cluster cannot start in this environment")
        # A chunk that kills its (only) worker exhausts the retry budget.
        executor.coordinator.worker_wait_timeout = 1.0
        try:
            victim = executor.worker_pids[0]
            jobs = [Job(fn=_nap, args=(0.3, i), name=f"nap[{i}]") for i in range(6)]

            def progress(done: int, total: int, label: str) -> None:
                if done == 1:
                    os.kill(victim, signal.SIGKILL)

            with pytest.raises(Exception, match="(abandoned|no workers)"):
                executor.execute(jobs, progress=progress)
        finally:
            executor.close()


# ----------------------------------------------------------------------
# Adaptive scheduling (protocol v3): windows, splits, telemetry
# ----------------------------------------------------------------------
def _spawn_throttled_worker(address, throttle: float, name: str = "throttled"):
    """Join one deliberately slowed worker to a live cluster endpoint."""
    from repro.cluster.executor import spawn_worker_process

    host, port = address
    return spawn_worker_process(
        f"{host}:{port}", name=name, throttle=throttle, connect_timeout=START_TIMEOUT
    )


def _await_workers(executor: DistributedExecutor, count: int) -> None:
    executor.wait_for_workers(count, timeout=START_TIMEOUT)


class TestChunkProgress:
    """Worker-side split bookkeeping (the partial-ack invariants)."""

    def test_split_keeps_started_jobs(self):
        from repro.cluster.worker import ChunkProgress

        state = ChunkProgress()
        assert state.try_start() and state.try_start()  # jobs 0, 1 started
        assert state.split(keep=0) == 2  # started jobs can never be given back
        assert not state.try_start()  # the tail belongs elsewhere now
        assert state.split(keep=9) == 2  # a later split cannot re-grow the chunk

    def test_split_keep_floor(self):
        from repro.cluster.worker import ChunkProgress

        state = ChunkProgress()
        assert state.split(keep=3) == 3  # nothing started: the floor wins
        for _ in range(3):
            assert state.try_start()
        assert not state.try_start()

    def test_cancel_is_independent_of_split(self):
        from repro.cluster.worker import ChunkProgress

        state = ChunkProgress()
        state.split(keep=1)
        assert not state.cancel.is_set()
        state.cancel.set()
        assert state.split(keep=0) == 0  # still answers exactly


class TestOrphanAccounting:
    def test_partial_orphan_steal_keeps_timeout_armed(self):
        """Stealing *some* orphaned work must not disarm the abandonment
        clock while other runs' spans still wait for a worker."""
        import asyncio

        from repro.cluster.coordinator import Coordinator, _Run, _Span, _WorkerLink

        async def scenario():
            coordinator = Coordinator()
            run_a = _Run([Job(fn=_square, args=(1,), name="a")], None, 1)
            run_b = _Run([Job(fn=_square, args=(2,), name="b")], None, 1)
            coordinator._distribute([_Span(run_a, 0, 1), _Span(run_b, 0, 1)])
            assert coordinator._orphaned_since is not None  # no workers: orphaned
            thief = _WorkerLink("w1", "w", 0, 1, writer=None)
            coordinator._links["w1"] = thief
            assert coordinator._steal_for(thief) is not None
            # one span is still orphaned: the clock must stay armed
            assert coordinator._orphans
            assert coordinator._orphaned_since is not None
            assert coordinator._steal_for(thief) is not None
            assert not coordinator._orphans
            assert coordinator._orphaned_since is None

        asyncio.run(scenario())


class TestAdaptiveScheduling:
    def test_chunk_window_validation(self):
        with pytest.raises(ValueError):
            DistributedExecutor(workers=1, chunk_window=0.0)
        with pytest.raises(ValueError):
            make_executor("distributed", workers=1, chunk_window=-1.0)
        with pytest.raises(ValueError, match="does not accept"):
            make_executor("parallel", chunk_window=0.5)
        executor = make_executor("distributed", workers=1, chunk_window=0.5)
        assert executor.chunk_window == 0.5
        executor.close()  # never started: a no-op

    def test_cli_rejects_chunk_window_on_non_distributed(self, capsys):
        code = cli_main(
            ["run", "dse", "--fast", "--quiet", "--chunk-window", "0.5"]
        )
        assert code == 2
        assert "--chunk-window" in capsys.readouterr().err

    def test_adaptive_bit_identical_with_telemetry(self):
        executor = DistributedExecutor(
            workers=2,
            chunk_window=0.05,
            heartbeat_interval=0.05,
            heartbeat_timeout=5.0,
            start_timeout=START_TIMEOUT,
        )
        executor.start()
        if executor._fallback is not None:
            pytest.skip("cluster cannot start in this environment")
        try:
            jobs = [
                Job(fn=_slow_seeded, args=(77, i, 0.004), name=f"adapt[{i}]")
                for i in range(24)
            ]
            serial = SerialExecutor().execute(
                [Job(fn=_slow_seeded, args=(77, i, 0.0), name=f"adapt[{i}]") for i in range(24)]
            )
            assert executor.execute(jobs) == serial
            status = executor.status()
            assert status["scheduling"] == "adaptive"
            assert status["chunk_window"] == 0.05
            for key in ("chunks_split", "splits_requested"):
                assert key in status["stats"]
            measured = [
                w for w in status["workers"]
                if w["alive"] and w["throughput_jobs_per_s"] is not None
            ]
            assert measured, "no worker accumulated EWMA throughput telemetry"
            for worker in measured:
                assert worker["throughput_jobs_per_s"] > 0
                assert worker["ewma_chunk_seconds"] > 0
        finally:
            executor.close()

    def test_straggler_split_reassigns_tail(self):
        """A big probe chunk on a slow worker is split: the fast worker
        takes the unstarted tail, the partial ack merges bit-identically."""
        executor = DistributedExecutor(
            workers=1,
            chunksize=6,  # oversized probe: lands whole on some worker
            chunk_window=0.05,
            heartbeat_interval=0.05,
            heartbeat_timeout=5.0,
            start_timeout=START_TIMEOUT,
        )
        executor.start()
        if executor._fallback is not None:
            pytest.skip("cluster cannot start in this environment")
        straggler = None
        try:
            straggler = _spawn_throttled_worker(executor.address, throttle=0.25)
            _await_workers(executor, 2)
            jobs = [
                Job(fn=_slow_seeded, args=(31, i, 0.004), name=f"split[{i}]")
                for i in range(12)
            ]
            serial = SerialExecutor().execute(
                [Job(fn=_slow_seeded, args=(31, i, 0.0), name=f"split[{i}]") for i in range(12)]
            )
            assert executor.execute(jobs) == serial
            status = executor.status()
            stats = status["stats"]
            # The straggler's 6-job chunk must have been split; the
            # counters are the proof (a wall-clock bound would flake on
            # loaded CI runners — the suite's timeout guards cover hangs).
            assert stats["splits_requested"] >= 1
            assert stats["chunks_split"] >= 1
            # Pool-level telemetry flags the throttled worker (once it has
            # a measured throughput to compare against the pool median).
            assert "pool_median_throughput" in status
            slow = [w for w in status["workers"] if w["name"] == "throttled"]
            assert slow
            if slow[0]["throughput_jobs_per_s"] is not None:
                assert slow[0]["id"] in status["stragglers"]
        finally:
            executor.close()
            if straggler is not None and straggler.poll() is None:
                straggler.terminate()
                straggler.wait(timeout=10)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_adversarial_schedules_merge_bit_identical(self, seed, chaos_schedule):
        """Randomized resize/split/steal/death sequences vs serial.

        Each trial draws a scheduling regime (:class:`ChaosSchedule` from
        ``conftest``) — window or static, probe size, straggler slowness,
        and whether a worker is killed mid-run — and the merged result
        must equal the serial one exactly.  ``test_sched_chaos`` runs the
        same regimes with concurrent mixed-priority sweeps on top.
        """
        plan = chaos_schedule(seed)
        executor = DistributedExecutor(
            workers=2,
            chunksize=plan.probe,
            chunk_window=plan.window,
            heartbeat_interval=0.05,
            heartbeat_timeout=2.0,
            start_timeout=START_TIMEOUT,
        )
        executor.start()
        if executor._fallback is not None:
            pytest.skip("cluster cannot start in this environment")
        straggler = None
        try:
            straggler = _spawn_throttled_worker(executor.address, throttle=plan.throttle)
            _await_workers(executor, 3)
            jobs = [
                Job(fn=_slow_seeded, args=(plan.entropy, i, 0.01), name=f"adv[{i}]")
                for i in range(plan.count)
            ]
            serial = SerialExecutor().execute(
                [
                    Job(fn=_slow_seeded, args=(plan.entropy, i, 0.0), name=f"adv[{i}]")
                    for i in range(plan.count)
                ]
            )
            victim = executor.worker_pids[0]
            killed = []

            def progress(done: int, total: int, label: str) -> None:
                if plan.kill_one and done >= 3 and not killed:
                    os.kill(victim, signal.SIGKILL)
                    killed.append(victim)

            assert executor.execute(jobs, progress=progress) == serial
            if plan.kill_one:
                assert killed, "the victim worker was never killed"
                assert executor.status()["stats"]["workers_lost"] >= 1
        finally:
            executor.close()
            if straggler is not None and straggler.poll() is None:
                straggler.terminate()
                straggler.wait(timeout=10)


# ----------------------------------------------------------------------
# Sharded Monte-Carlo (service <-> cluster integration)
# ----------------------------------------------------------------------
class TestShardedMonteCarlo:
    def test_sharded_equals_unsharded_serial(self):
        technology = tsmc65_like()
        reference = mismatch_monte_carlo(technology, samples=24, seed=11)
        sharded = mismatch_monte_carlo_sharded(technology, samples=24, seed=11, shards=3)
        np.testing.assert_array_equal(
            reference["sigma_at_sampling_times"], sharded["sigma_at_sampling_times"]
        )
        np.testing.assert_array_equal(
            reference["final_voltages"], sharded["final_voltages"]
        )
        np.testing.assert_array_equal(reference["times"], sharded["times"])

    def test_sharded_equals_unsharded_distributed(self, cluster):
        technology = tsmc65_like()
        reference = mismatch_monte_carlo(technology, samples=30, seed=5)
        distributed = mismatch_monte_carlo_sharded(
            technology, samples=30, seed=5, shards=5, engine=SweepEngine(cluster)
        )
        np.testing.assert_array_equal(
            reference["sigma_at_sampling_times"],
            distributed["sigma_at_sampling_times"],
        )
        np.testing.assert_array_equal(
            reference["final_voltages"], distributed["final_voltages"]
        )

    def test_shard_jobs_are_cacheable(self, tmp_path):
        technology = tsmc65_like()
        engine = SweepEngine(cache=ArtifactCache(tmp_path / "cache"))
        cold = mismatch_monte_carlo_sharded(
            technology, samples=16, seed=3, shards=4, engine=engine
        )
        warm = mismatch_monte_carlo_sharded(
            technology, samples=16, seed=3, shards=4, engine=engine
        )
        np.testing.assert_array_equal(
            cold["sigma_at_sampling_times"], warm["sigma_at_sampling_times"]
        )
        assert engine.stats.cache_hits == 4
        assert engine.stats.jobs_executed == 4  # only the cold run executed

    def test_service_workload_shards_match_single_job(self, tmp_path):
        engine = SweepEngine(cache=ArtifactCache(tmp_path / "cache"))
        single = run_montecarlo({"samples": 24, "seed": 7}, engine)
        sharded = run_montecarlo({"samples": 24, "seed": 7, "shards": 3}, engine)
        assert single["sigma_v_blb"] == sharded["sigma_v_blb"]
        assert sharded["shards"] == 3
        with pytest.raises(ValueError):
            run_montecarlo({"samples": 8, "shards": 0}, engine)


# ----------------------------------------------------------------------
# CLI: cache info --json (satellite)
# ----------------------------------------------------------------------
class TestCacheInfoJson:
    def test_cache_info_json_document(self, tmp_path, capsys):
        cache = ArtifactCache(tmp_path / "cache")
        key = job_key("cache-info-json-test", 1)
        cache.put(key, Artifact(arrays={"x": np.arange(4.0)}, meta={"k": 1}))

        code = cli_main(["cache", "info", "--cache-dir", str(tmp_path / "cache"), "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["count"] == 1
        assert document["bytes"] > 0
        assert document["max_bytes"] is None
        assert document["root"] == str(tmp_path / "cache")
        assert set(document["stats"]) == {
            "hits",
            "misses",
            "writes",
            "corrupt_dropped",
            "evictions",
        }

    def test_cache_info_json_subprocess(self, tmp_path):
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        output = subprocess.check_output(
            [sys.executable, "-m", "repro", "cache", "info", "--json"],
            env=env,
            text=True,
            timeout=START_TIMEOUT,
        )
        document = json.loads(output)
        assert document["count"] == 0
        assert document["bytes"] == 0


# ----------------------------------------------------------------------
# Observability: slot occupancy, trace ids, cluster status --watch
# ----------------------------------------------------------------------
class TestSlotOccupancy:
    """The PR 5 telemetry gap: multi-slot workers' EWMA throughput."""

    def test_overlapping_chunks_scale_to_worker_capacity(self):
        """Deterministic replay of the bug: two chunks sharing a 2-slot
        worker must measure whole-worker capacity, not per-chunk speed."""
        from repro.telemetry import WorkerStats

        stats = WorkerStats("w2")
        mark_a = stats.chunk_dispatched(now=0.0)
        mark_b = stats.chunk_dispatched(now=0.0)
        done_a = stats.chunk_settled(now=10.0)
        stats.observe_chunk(jobs=5, seconds=10.0, occupancy=(done_a - mark_a) / 10.0)
        done_b = stats.chunk_settled(now=10.0)
        stats.observe_chunk(jobs=5, seconds=10.0, occupancy=(done_b - mark_b) / 10.0)
        # 10 jobs were delivered in 10 s; the pre-fix accounting (raw
        # jobs/seconds per chunk) halved this to 0.5
        assert stats.throughput == pytest.approx(1.0)
        assert stats.inflight_chunks == 0

    def test_preempted_chunk_leaves_ewma_untouched(self):
        """Regression: a preemption-truncated completion (few jobs over a
        wall time that includes the revoke round-trip) must not decay the
        worker's EWMA — the revoke was the scheduler's choice, not the
        worker slowing down.  Volume totals still count the kept jobs."""
        from repro.telemetry import TelemetryBook, WorkerStats

        stats = WorkerStats("w1")
        stats.observe_chunk(jobs=10, seconds=1.0)  # healthy: 10 jobs/s
        healthy_throughput = stats.ewma_throughput
        healthy_seconds = stats.ewma_chunk_seconds
        stats.observe_chunk(jobs=1, seconds=8.0, preempted=True)
        assert stats.ewma_throughput == healthy_throughput
        assert stats.ewma_chunk_seconds == healthy_seconds
        assert stats.chunks_observed == 2
        assert stats.jobs_observed == 11
        # and through the book-level API the coordinator actually calls
        book = TelemetryBook()
        book.observe_chunk("w2", jobs=4, seconds=1.0)
        before = book.get("w2").ewma_throughput
        book.observe_chunk("w2", jobs=1, seconds=9.0, preempted=True)
        assert book.get("w2").ewma_throughput == before

    def test_two_slot_worker_measures_parallel_capacity(self):
        """Regression with a real ``--slots 2`` worker: measured EWMA
        throughput must exceed the single-slot ceiling."""
        import socket

        from repro.cluster.executor import spawn_worker_process

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        executor = DistributedExecutor(
            workers=0,
            connect=f"127.0.0.1:{port}",
            min_workers=1,
            chunksize=2,
            start_timeout=START_TIMEOUT,
        )
        worker = spawn_worker_process(
            f"127.0.0.1:{port}", name="twoslot", slots=2, connect_timeout=START_TIMEOUT
        )
        try:
            executor.start()
            if executor._fallback is not None:
                pytest.skip("cluster cannot start in this environment")
            naptime = 0.05
            jobs = [Job(fn=_nap, args=(naptime, i), name=f"slot[{i}]") for i in range(16)]
            assert executor.execute(jobs) == list(range(16))
            [worker_view] = [w for w in executor.status()["workers"] if w["alive"]]
            assert worker_view["slots"] == 2
            measured = worker_view["throughput_jobs_per_s"]
            assert measured is not None
            # a 1-slot worker is physically capped at 1/naptime jobs/s;
            # the old per-chunk accounting measured at or below that cap
            # however many slots ran.  Both slots filled, the occupancy-
            # corrected estimate must clear the cap with margin.
            assert measured > 1.2 / naptime, (
                f"throughput {measured:.1f} jobs/s does not reflect 2 slots"
            )
        finally:
            executor.close()
            if worker.poll() is None:
                worker.terminate()
                worker.wait(timeout=10)


class TestTraceAcrossCluster:
    def test_bit_identity_with_trace_and_round_trip(self, cluster):
        """Tracing is free: results stay bit-identical with a trace id set,
        and the chunk events prove the id crossed to workers and back."""
        from repro import obs

        seen = []
        callback = obs.EVENTS.subscribe(seen.append)
        try:
            jobs = _seeded_jobs(16)
            serial = SerialExecutor().execute(_seeded_jobs(16))
            assert cluster.execute(jobs, trace="trace-cluster-1") == serial
        finally:
            obs.EVENTS.unsubscribe(callback)
        mine = [e for e in seen if e.get("trace") == "trace-cluster-1"]
        types = {e["type"] for e in mine}
        assert "chunk_dispatched" in types
        # chunk_done events carry the worker-echoed trace: the id made the
        # full coordinator -> worker -> coordinator round trip
        assert "chunk_done" in types
        seqs = [e["seq"] for e in mine]
        assert seqs == sorted(seqs)


class TestClusterWatch:
    def test_watch_cli_follows_live_events(self, cluster, capsys):
        import threading

        host, port = cluster.address
        jobs = [Job(fn=_nap, args=(0.05, i), name=f"w[{i}]") for i in range(20)]
        results = []
        runner = threading.Thread(
            target=lambda: results.append(cluster.execute(jobs, trace="trace-watch-cli"))
        )
        runner.start()
        try:
            code = cli_main(
                [
                    "cluster",
                    "status",
                    "--connect",
                    f"{host}:{port}",
                    "--watch",
                    "--duration",
                    "2.5",
                ]
            )
        finally:
            runner.join(timeout=START_TIMEOUT)
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster at" in out and "live" in out
        assert results and results[0] == list(range(20))
        assert "trace-watch-cli" in out, "the watch table never saw the run's trace"

    def test_watch_rejects_json_and_requires_watch_for_duration(self, capsys):
        assert (
            cli_main(
                ["cluster", "status", "--connect", "127.0.0.1:1", "--watch", "--json"]
            )
            == 2
        )
        assert "--json" in capsys.readouterr().err
        assert (
            cli_main(
                ["cluster", "status", "--connect", "127.0.0.1:1", "--duration", "1"]
            )
            == 2
        )
        assert "--duration" in capsys.readouterr().err
