"""Tests for the observability layer (:mod:`repro.obs`).

Covers the tentpole guarantees:

* the metrics registry is pure accounting: counters / gauges / labelled
  histograms render valid Prometheus 0.0.4 text that the shared
  :func:`repro.obs.parse_exposition` validator round-trips;
* the metric naming rule (``repro_<subsystem>_<what>_<unit>``) is
  enforced at registration time AND holds for every metric the
  instrumented tiers actually register (the same lint CI runs);
* :class:`repro.obs.CounterGroup` keeps instance-relative ``status``
  numbers at zero while the process-wide counters stay monotonic;
* the event bus delivers in strictly increasing ``seq`` order and never
  lets a broken subscriber take an emitting tier down;
* the ``GET /metrics`` endpoint speaks the exposition content type and
  survives junk requests;
* one sweep is observable three ways with consistent numbers — the
  Prometheus scrape, the ``watch`` event stream (trace id across tiers)
  and the ``status`` op all agree.

Every async scenario runs under ``asyncio.wait_for`` so a hung server
fails the test quickly instead of stalling the suite.
"""

from __future__ import annotations

import asyncio
import contextlib

import pytest

from repro import obs
from repro.obs.metrics import LABEL_NAME_RE
from repro.runtime import Job, SweepEngine, SweepSpec
from repro.service import (
    ServiceClient,
    SweepService,
    register_workload,
    unregister_workload,
)

TIMEOUT = 30.0


def run(coro):
    """Run a coroutine with a hard timeout so nothing can hang the suite."""
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


@contextlib.asynccontextmanager
async def running_service(engine=None, **kwargs):
    service = SweepService(engine=engine, **kwargs)
    await service.start()
    try:
        yield service
    finally:
        await service.stop()


# ----------------------------------------------------------------------
# Registry accounting
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram(self):
        registry = obs.MetricsRegistry()
        jobs = registry.counter("repro_t_jobs_total", "Jobs.")
        jobs.inc()
        jobs.inc(4)
        assert jobs.value() == 5.0
        with pytest.raises(ValueError, match="cannot decrease"):
            jobs.inc(-1)

        live = registry.gauge("repro_t_live_total")
        live.inc()
        live.inc()
        live.dec()
        assert live.value() == 1.0
        live.set_function(lambda: 9)
        assert live.value() == 9.0

        seconds = registry.histogram("repro_t_run_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            seconds.observe(value)
        assert seconds.count() == 3
        assert seconds.sum() == pytest.approx(5.55)

    def test_labels(self):
        registry = obs.MetricsRegistry()
        ops = registry.counter("repro_t_requests_total", labels=("op",))
        ops.inc(op="submit")
        ops.inc(2, op="status")
        assert ops.value(op="submit") == 1.0
        assert ops.value(op="status") == 2.0
        assert ops.value(op="never-seen") == 0.0
        with pytest.raises(ValueError, match="takes labels"):
            ops.inc(kind="submit")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("repro_t_bad_total", labels=("0digit",))

    def test_name_lint_enforced_at_registration(self):
        registry = obs.MetricsRegistry()
        for bad in ("jobs_total", "repro_jobs", "repro_Jobs_total", "repro_x_count"):
            with pytest.raises(ValueError, match="does not match"):
                registry.counter(bad)

    def test_get_or_create_is_idempotent_but_typed(self):
        registry = obs.MetricsRegistry()
        first = registry.counter("repro_t_ticks_total", labels=("op",))
        assert registry.counter("repro_t_ticks_total", labels=("op",)) is first
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("repro_t_ticks_total", labels=("op",))
        with pytest.raises(ValueError, match="already registered with labels"):
            registry.counter("repro_t_ticks_total", labels=("kind",))

    def test_render_round_trips_through_the_validator(self):
        registry = obs.MetricsRegistry()
        registry.counter("repro_t_events_total", "Events.", labels=("type",)).inc(
            3, type="chunk_done"
        )
        registry.gauge("repro_t_bytes_bytes", "Size.").set(1234)
        histogram = registry.histogram(
            "repro_t_chunk_seconds", "Chunk wall time.", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(2.0)

        parsed = obs.parse_exposition(registry.render())
        assert parsed["repro_t_events_total"][(("type", "chunk_done"),)] == 3.0
        assert parsed["repro_t_bytes_bytes"][()] == 1234.0
        buckets = parsed["repro_t_chunk_seconds_bucket"]
        assert buckets[(("le", "0.1"),)] == 1.0
        assert buckets[(("le", "1"),)] == 1.0  # cumulative, 2.0 is above
        assert buckets[(("le", "+Inf"),)] == 2.0
        assert parsed["repro_t_chunk_seconds_count"][()] == 2.0
        assert parsed["repro_t_chunk_seconds_sum"][()] == pytest.approx(2.05)

    def test_validator_rejects_malformed_text(self):
        with pytest.raises(ValueError, match="malformed sample"):
            obs.parse_exposition("this is not exposition text\n")
        with pytest.raises(ValueError, match="has no # TYPE"):
            obs.parse_exposition("repro_unannounced_total 1\n")

    def test_counter_group_is_baseline_relative(self):
        registry = obs.MetricsRegistry()
        rejects = registry.counter("repro_t_rejects_total")
        rejects.inc(7)  # an earlier instance's traffic
        group = obs.CounterGroup({"rejects": rejects})
        assert group["rejects"] == 0
        group.inc("rejects", 2)
        assert group["rejects"] == 2
        assert rejects.value() == 9.0  # the scrape keeps the monotonic truth
        assert dict(group) == {"rejects": 2}
        assert group.get("rejects") == 2 and group.get("missing") is None
        assert "rejects" in group and len(group) == 1


class TestNamingLint:
    def test_every_registered_metric_matches_the_rule(self):
        """The CI naming lint: after importing every instrumented tier (and
        constructing a Coordinator, whose counters register lazily), each
        name in the process registry must match METRIC_NAME_RE and each
        label the label rule."""
        import repro.runtime  # noqa: F401  (registers engine metrics)
        import repro.runtime.cache  # noqa: F401
        import repro.service.server  # noqa: F401
        import repro.cluster.worker  # noqa: F401
        from repro.cluster.coordinator import Coordinator

        Coordinator()  # cluster counters register at first construction
        names = obs.REGISTRY.names()
        assert names, "the registry cannot be empty after importing the tiers"
        for name in names:
            assert obs.METRIC_NAME_RE.match(name), f"bad metric name {name!r}"
            for label in obs.REGISTRY.get(name).labels:
                assert LABEL_NAME_RE.match(label), f"bad label {label!r} on {name!r}"
        # the issue-mandated spot checks: the converted ad-hoc stats exist
        for expected in (
            "repro_service_requests_total",
            "repro_status_cluster_errors_total",
            "repro_engine_jobs_executed_total",
            "repro_cluster_chunks_dispatched_total",
            "repro_cache_events_total",
        ):
            assert expected in names, f"{expected} missing from the registry"


# ----------------------------------------------------------------------
# Event bus
# ----------------------------------------------------------------------
class TestEventBus:
    def test_seq_is_strictly_monotonic_per_subscriber(self):
        bus = obs.EventBus()
        seen = []
        bus.subscribe(seen.append)
        for index in range(5):
            bus.emit("chunk_done", trace="t", chunk=index)
        seqs = [event["seq"] for event in seen]
        assert seqs == sorted(seqs) and len(set(seqs)) == 5

    def test_unknown_type_rejected_and_trace_optional(self):
        bus = obs.EventBus()
        with pytest.raises(ValueError, match="unknown event type"):
            bus.emit("totally_new_thing")
        event = bus.emit("cache_hit")
        assert "trace" not in event
        assert bus.emit("cache_hit", trace="t-1")["trace"] == "t-1"

    def test_broken_subscriber_never_breaks_the_emitter(self):
        bus = obs.EventBus()
        seen = []

        def broken(event):
            raise RuntimeError("subscriber bug")

        bus.subscribe(broken)
        bus.subscribe(seen.append)
        bus.emit("worker_joined", worker="w1")
        assert len(seen) == 1

    def test_unsubscribe_round_trips(self):
        bus = obs.EventBus()
        seen = []
        callback = bus.subscribe(seen.append)
        assert bus.subscriber_count() == 1
        bus.unsubscribe(callback)
        bus.unsubscribe(callback)  # idempotent
        bus.emit("worker_lost", worker="w1")
        assert seen == [] and bus.subscriber_count() == 0


# ----------------------------------------------------------------------
# HTTP exposition endpoint
# ----------------------------------------------------------------------
async def _http_get(host, port, path="/metrics", request_line=None):
    reader, writer = await asyncio.open_connection(host, port)
    raw = request_line or f"GET {path} HTTP/1.0"
    writer.write(f"{raw}\r\nHost: test\r\n\r\n".encode("latin-1"))
    await writer.drain()
    data = await reader.read()
    writer.close()
    with contextlib.suppress(ConnectionError, OSError):
        await writer.wait_closed()
    header, _, body = data.partition(b"\r\n\r\n")
    lines = header.split(b"\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(b":")
        headers[key.strip().lower().decode()] = value.strip().decode()
    return status, headers, body.decode("utf-8")


class TestMetricsServer:
    def test_scrape_is_valid_exposition(self):
        async def scenario():
            obs.counter("repro_t_scrapeme_total").inc(3)
            server = await obs.MetricsServer().start()
            try:
                await _http_get("127.0.0.1", server.port)  # prime the scrape counter
                return await _http_get("127.0.0.1", server.port)
            finally:
                await server.stop()

        status, headers, body = run(scenario())
        assert status == 200
        assert headers["content-type"] == obs.CONTENT_TYPE
        parsed = obs.parse_exposition(body)
        assert parsed["repro_t_scrapeme_total"][()] >= 3.0
        # the endpoint accounts for its own scrapes
        assert parsed["repro_obs_scrapes_total"][(("code", "200"),)] >= 1.0

    def test_unknown_path_and_bad_method(self):
        async def scenario():
            server = await obs.MetricsServer().start()
            try:
                missing = await _http_get("127.0.0.1", server.port, path="/nope")
                posted = await _http_get(
                    "127.0.0.1", server.port, request_line="POST /metrics HTTP/1.0"
                )
                root = await _http_get("127.0.0.1", server.port, path="/")
            finally:
                await server.stop()
            return missing, posted, root

        missing, posted, root = run(scenario())
        assert missing[0] == 404
        assert posted[0] == 400
        assert root[0] == 200

    def test_start_in_thread_serves_loopless_hosts(self):
        server = obs.MetricsServer().start_in_thread()
        try:
            status, _, body = run(_http_get("127.0.0.1", server.port))
            assert status == 200
            obs.parse_exposition(body)  # raises on malformed text
        finally:
            server.stop_in_thread()


# ----------------------------------------------------------------------
# Service integration: trace ids, watch stream, three-way consistency
# ----------------------------------------------------------------------
def _obs_square(value: int) -> int:
    return value * value


def _obs_workload(params, engine):
    count = int(params.get("n", 4))
    jobs = [Job(fn=_obs_square, args=(i,), name=f"sq[{i}]") for i in range(count)]
    return {"sum": sum(engine.run(SweepSpec("obs-toy", jobs)))}


@pytest.fixture
def obs_workload():
    register_workload("obs-toy", _obs_workload)
    try:
        yield
    finally:
        unregister_workload("obs-toy")


class TestServiceObservability:
    def test_server_mints_trace_and_client_proposal_wins(self, obs_workload):
        async def scenario():
            async with running_service(SweepEngine()) as service:
                host, port = service.address
                async with ServiceClient(host, port) as client:
                    minted = await client.submit("obs-toy", {"n": 2})
                    proposed = await client.submit(
                        "obs-toy", {"n": 3}, trace="trace-mine"
                    )
            return minted, proposed

        minted, proposed = run(scenario())
        assert minted.trace, "the server must mint a trace when none is proposed"
        assert proposed.trace == "trace-mine"

    def test_watch_stream_orders_one_trace_monotonically(self, obs_workload):
        """Satellite: events for one trace arrive in strictly increasing
        ``seq`` order, and the trace follows the sweep across tiers."""

        async def scenario():
            async with running_service(SweepEngine()) as service:
                host, port = service.address
                async with ServiceClient(host, port) as watcher:
                    events = []

                    async def consume():
                        async for event in watcher.watch():
                            events.append(event)
                            if event.get("type") == "run_result":
                                return

                    consumer = asyncio.create_task(consume())
                    while not service._watch_entries:  # subscription is live
                        await asyncio.sleep(0.01)
                    async with ServiceClient(host, port) as client:
                        result = await client.submit(
                            "obs-toy", {"n": 4}, trace="trace-watch-1"
                        )
                    await asyncio.wait_for(consumer, TIMEOUT)
            return result, events

        result, events = run(scenario())
        assert result.trace == "trace-watch-1"
        mine = [e for e in events if e.get("trace") == "trace-watch-1"]
        types = [e["type"] for e in mine]
        for expected in ("submit_accepted", "run_started", "run_finished", "run_result"):
            assert expected in types, f"no {expected} event for the trace"
        seqs = [e["seq"] for e in mine]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        # service-tier and engine-tier events share the one trace: the
        # submit_accepted must precede every engine event
        assert types[0] == "submit_accepted"

    def test_watch_cancel_ends_the_stream_cleanly(self):
        async def scenario():
            async with running_service(SweepEngine()) as service:
                host, port = service.address
                async with ServiceClient(host, port) as watcher:

                    async def consume():
                        async for _ in watcher.watch():
                            pass
                        return "ended"

                    task = asyncio.create_task(consume())
                    while not service._watch_entries:
                        await asyncio.sleep(0.01)
                    assert await watcher.cancel() is True
                    outcome = await asyncio.wait_for(task, 5.0)
                    alive = await watcher.ping()  # the connection survives
            return outcome, alive

        outcome, alive = run(scenario())
        assert outcome == "ended" and alive is True

    def test_stop_with_live_watcher_does_not_deadlock(self):
        async def scenario():
            service = SweepService(SweepEngine())
            host, port = await service.start()
            watcher = await ServiceClient(host, port).connect()

            async def consume():
                with contextlib.suppress(Exception):
                    async for _ in watcher.watch():
                        pass

            task = asyncio.create_task(consume())
            while not service._watch_entries:
                await asyncio.sleep(0.01)
            await service.stop()  # must cancel the watcher, not wait on it
            await asyncio.wait_for(task, 5.0)
            await watcher.aclose()
            return True

        assert run(scenario()) is True

    def test_one_sweep_three_consistent_views(self, obs_workload):
        """The acceptance criterion: Prometheus scrape, watch stream and
        ``status`` op observe the same sweep with consistent numbers."""
        jobs_counter = obs.REGISTRY.counter("repro_engine_jobs_executed_total")
        submit_counter = obs.REGISTRY.counter(
            "repro_service_requests_total", labels=("op",)
        )
        jobs_before = jobs_counter.value()
        submits_before = submit_counter.value(op="submit")

        async def scenario():
            async with running_service(SweepEngine()) as service:
                host, port = service.address
                metrics = await obs.MetricsServer().start()
                try:
                    async with ServiceClient(host, port) as watcher:
                        events = []

                        async def consume():
                            async for event in watcher.watch():
                                events.append(event)
                                if event.get("type") == "run_result":
                                    return

                        consumer = asyncio.create_task(consume())
                        while not service._watch_entries:
                            await asyncio.sleep(0.01)
                        async with ServiceClient(host, port) as client:
                            result = await client.submit("obs-toy", {"n": 5})
                            status = await client.status()
                        await asyncio.wait_for(consumer, TIMEOUT)
                    _, _, body = await _http_get("127.0.0.1", metrics.port)
                finally:
                    await metrics.stop()
            return result, status, events, body

        result, status, events, body = run(scenario())

        # view 1: the status op (fresh engine: absolute numbers)
        assert status["engine_stats"]["jobs_executed"] == 5
        assert status["engine_stats"]["sweeps"] == 1

        # view 2: the Prometheus scrape (process-lifetime: deltas)
        parsed = obs.parse_exposition(body)
        assert (
            parsed["repro_engine_jobs_executed_total"][()] - jobs_before == 5.0
        ), "scraped engine counter must match the status totals"
        assert (
            parsed["repro_service_requests_total"][(("op", "submit"),)]
            - submits_before
            == 1.0
        )
        assert jobs_counter.value() - jobs_before == 5.0

        # view 3: the watch stream, stamped with the sweep's trace id
        assert result.trace
        mine = [e for e in events if e.get("trace") == result.trace]
        finished = [e for e in mine if e["type"] == "run_finished"]
        assert finished and finished[0]["jobs"] == 5
        assert any(e["type"] == "run_result" for e in mine)
