"""Unit tests for the bit-line parasitics and waveform containers."""

import numpy as np
import pytest

from repro.circuits.bitline import BitLine
from repro.circuits.technology import tsmc65_like
from repro.circuits.waveform import Waveform


class TestBitLine:
    def test_from_technology_scales_with_rows(self):
        tech = tsmc65_like()
        short = BitLine.from_technology(tech, rows=32)
        long = BitLine.from_technology(tech, rows=128)
        assert long.capacitance == pytest.approx(4.0 * short.capacitance)

    def test_invalid_capacitance_rejected(self):
        with pytest.raises(ValueError):
            BitLine(capacitance=0.0)

    def test_charge_for_swing(self):
        line = BitLine(capacitance=50e-15)
        assert line.charge_for_swing(0.2) == pytest.approx(1e-14)
        with pytest.raises(ValueError):
            line.charge_for_swing(-0.1)

    def test_precharge_energy_linear_in_swing(self):
        line = BitLine(capacitance=50e-15)
        assert line.precharge_energy(1.0, 0.4) == pytest.approx(2.0 * line.precharge_energy(1.0, 0.2))

    def test_full_swing_energy(self):
        line = BitLine(capacitance=50e-15)
        assert line.full_swing_energy(1.0) == pytest.approx(50e-15)

    def test_voltage_after_charge_removal_clips_at_zero(self):
        line = BitLine(capacitance=50e-15)
        assert line.voltage_after_charge_removal(1.0, 1e-13) == pytest.approx(0.0)
        assert line.voltage_after_charge_removal(1.0, 1e-14) == pytest.approx(0.8)

    def test_time_constant(self):
        line = BitLine(capacitance=50e-15)
        assert line.discharge_time_constant(10e3) == pytest.approx(5e-10)

    def test_per_cell_capacitance(self):
        line = BitLine(capacitance=64e-15, rows=64)
        assert line.per_cell_capacitance() == pytest.approx(1e-15)


class TestWaveform:
    def _ramp(self):
        times = np.linspace(0.0, 1e-9, 11)
        values = 1.0 - times / 1e-9 * 0.5
        return Waveform(times=times, values=values)

    def test_basic_properties(self):
        wave = self._ramp()
        assert len(wave) == 11
        assert wave.duration == pytest.approx(1e-9)
        assert wave.initial_value == pytest.approx(1.0)
        assert wave.final_value == pytest.approx(0.5)

    def test_value_at_interpolates(self):
        wave = self._ramp()
        assert wave.value_at(0.5e-9) == pytest.approx(0.75)

    def test_value_at_outside_span_rejected(self):
        wave = self._ramp()
        with pytest.raises(ValueError):
            wave.value_at(2e-9)

    def test_delta_and_total_delta(self):
        wave = self._ramp()
        assert wave.delta_at(1e-9) == pytest.approx(0.5)
        assert wave.total_delta() == pytest.approx(0.5)

    def test_crossing_time(self):
        wave = self._ramp()
        assert wave.crossing_time(0.75) == pytest.approx(0.5e-9, rel=1e-6)
        assert wave.crossing_time(0.2) is None

    def test_resample(self):
        wave = self._ramp()
        resampled = wave.resampled(np.linspace(0.0, 1e-9, 5))
        assert len(resampled) == 5
        assert resampled.final_value == pytest.approx(0.5)

    def test_slope(self):
        wave = self._ramp()
        assert wave.slope_at(0.5e-9) == pytest.approx(-0.5 / 1e-9, rel=1e-3)

    def test_non_monotonic_times_rejected(self):
        with pytest.raises(ValueError):
            Waveform(times=np.array([0.0, 1.0, 0.5]), values=np.zeros(3))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Waveform(times=np.array([0.0, 1.0]), values=np.zeros(3))
