"""Unit tests for PVT operating conditions."""

import pytest

from repro.circuits.conditions import (
    OperatingConditions,
    PVTCorner,
    celsius_to_kelvin,
    condition_grid,
    kelvin_to_celsius,
    standard_pvt_corners,
)
from repro.circuits.technology import ProcessCorner, tsmc65_like


class TestTemperatureConversions:
    def test_celsius_to_kelvin(self):
        assert celsius_to_kelvin(0.0) == pytest.approx(273.15)
        assert celsius_to_kelvin(27.0) == pytest.approx(300.15)

    def test_roundtrip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(42.0)) == pytest.approx(42.0)


class TestOperatingConditions:
    def test_nominal_matches_technology(self):
        tech = tsmc65_like()
        nominal = OperatingConditions.nominal(tech)
        assert nominal.vdd == pytest.approx(tech.vdd_nominal)
        assert nominal.temperature == pytest.approx(tech.temperature_nominal)
        assert nominal.corner is ProcessCorner.TYPICAL

    def test_invalid_vdd_rejected(self):
        with pytest.raises(ValueError):
            OperatingConditions(vdd=-0.1)

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ValueError):
            OperatingConditions(temperature=0.0)

    def test_with_methods_return_copies(self):
        base = OperatingConditions(vdd=1.0, temperature=300.0)
        modified = base.with_vdd(0.9).with_temperature_celsius(70.0).with_corner(ProcessCorner.SLOW)
        assert base.vdd == pytest.approx(1.0)
        assert modified.vdd == pytest.approx(0.9)
        assert modified.temperature == pytest.approx(celsius_to_kelvin(70.0))
        assert modified.corner is ProcessCorner.SLOW

    def test_describe_mentions_all_axes(self):
        text = OperatingConditions(vdd=1.05, temperature=300.15).describe()
        assert "1.050" in text
        assert "27.0" in text
        assert "typical" in text


class TestCornersAndGrids:
    def test_standard_corner_set_covers_axes(self):
        corners = standard_pvt_corners(tsmc65_like())
        names = {corner.name for corner in corners}
        assert {"nominal", "low-vdd", "high-vdd", "cold", "hot", "fast", "slow"} <= names

    def test_pvt_corner_describe(self):
        corner = PVTCorner("hot", OperatingConditions(temperature=celsius_to_kelvin(70)))
        assert "hot" in corner.describe()

    def test_condition_grid_size(self):
        grid = list(
            condition_grid(
                [0.9, 1.0],
                [300.0, 350.0],
                corners=[ProcessCorner.TYPICAL, ProcessCorner.FAST],
            )
        )
        assert len(grid) == 8
        assert all(isinstance(item, OperatingConditions) for item in grid)
