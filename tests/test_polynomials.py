"""Unit tests for the polynomial model building blocks."""

import numpy as np
import pytest

from repro.core.polynomials import (
    Polynomial1D,
    SeparableProductModel,
    TensorPolynomialModel,
    vandermonde,
)


class TestVandermonde:
    def test_columns(self):
        matrix = vandermonde([1.0, 2.0], 2)
        assert matrix.shape == (2, 3)
        assert np.allclose(matrix[1], [1.0, 2.0, 4.0])

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            vandermonde([1.0], -1)


class TestPolynomial1D:
    def test_evaluation(self):
        poly = Polynomial1D([1.0, 2.0, 3.0])
        assert float(poly(2.0)) == pytest.approx(1.0 + 4.0 + 12.0)

    def test_degree(self):
        assert Polynomial1D([1.0, 0.0, 5.0]).degree == 2

    def test_fit_recovers_coefficients(self):
        x = np.linspace(-1.0, 1.0, 40)
        y = 0.5 - 1.5 * x + 2.0 * x**2
        fitted = Polynomial1D.fit(x, y, degree=2)
        assert np.allclose(fitted.coefficients, [0.5, -1.5, 2.0], atol=1e-10)

    def test_fit_insufficient_samples_rejected(self):
        with pytest.raises(ValueError):
            Polynomial1D.fit([1.0, 2.0], [1.0, 2.0], degree=3)

    def test_derivative(self):
        poly = Polynomial1D([1.0, 2.0, 3.0])
        derivative = poly.derivative()
        assert np.allclose(derivative.coefficients, [2.0, 6.0])
        assert Polynomial1D([4.0]).derivative().coefficients[0] == 0.0

    def test_scaled(self):
        poly = Polynomial1D([1.0, 2.0]).scaled(3.0)
        assert np.allclose(poly.coefficients, [3.0, 6.0])

    def test_serialisation_roundtrip(self):
        poly = Polynomial1D([0.1, -0.2, 0.3], variable="vdd")
        clone = Polynomial1D.from_dict(poly.to_dict())
        assert clone.variable == "vdd"
        assert np.allclose(clone.coefficients, poly.coefficients)

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ValueError):
            Polynomial1D(np.array([]))


class TestSeparableProductModel:
    def test_exact_recovery_of_rank_one_product(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1.0, 1.0, 300)
        y = rng.uniform(0.0, 2.0, 300)
        target = (1.0 + 2.0 * x + 0.5 * x**2) * (0.3 + 0.7 * y)
        model = SeparableProductModel(degrees=(2, 1), variables=("x", "y"))
        model.fit([x, y], target)
        assert model.rms_residual([x, y], target) < 1e-8
        assert model.fitted

    def test_three_factor_fit(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.5, 1.5, 400)
        y = rng.uniform(-1.0, 1.0, 400)
        z = rng.uniform(0.0, 1.0, 400)
        target = (2.0 + x) * (1.0 - 0.5 * y + 0.2 * y**2) * (0.5 + z)
        model = SeparableProductModel(degrees=(1, 2, 1))
        model.fit([x, y, z], target)
        assert model.rms_residual([x, y, z], target) < 1e-6

    def test_wrong_input_count_rejected(self):
        model = SeparableProductModel(degrees=(1, 1))
        with pytest.raises(ValueError):
            model([1.0])
        with pytest.raises(ValueError):
            model.fit([[1.0, 2.0, 3.0]], [1.0, 2.0, 3.0])

    def test_serialisation_roundtrip(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, 100)
        y = rng.uniform(-1, 1, 100)
        target = (1 + x) * (2 + y)
        model = SeparableProductModel(degrees=(1, 1), variables=("a", "b"))
        model.fit([x, y], target)
        clone = SeparableProductModel.from_dict(model.to_dict())
        assert np.allclose(clone(x, y), model(x, y))

    def test_invalid_degrees_rejected(self):
        with pytest.raises(ValueError):
            SeparableProductModel(degrees=())
        with pytest.raises(ValueError):
            SeparableProductModel(degrees=(1, -2))


class TestTensorPolynomialModel:
    def test_fits_cross_terms_that_rank_one_cannot(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, 400)
        y = rng.uniform(-1, 1, 400)
        # x*y + x^2 is rank-2; the full tensor model must fit it exactly.
        target = x * y + x**2
        tensor = TensorPolynomialModel(2, 2)
        tensor.fit(x, y, target)
        assert tensor.rms_residual(x, y, target) < 1e-10
        separable = SeparableProductModel(degrees=(2, 2))
        separable.fit([x, y], target)
        assert separable.rms_residual([x, y], target) > 1e-3

    def test_parameter_count(self):
        assert TensorPolynomialModel(4, 2).parameter_count == 15

    def test_serialisation_roundtrip(self):
        rng = np.random.default_rng(4)
        x, y = rng.uniform(-1, 1, (2, 120))
        tensor = TensorPolynomialModel(1, 1)
        tensor.fit(x, y, 1 + x + 2 * y + 3 * x * y)
        clone = TensorPolynomialModel.from_dict(tensor.to_dict())
        assert np.allclose(clone(x, y), tensor(x, y))

    def test_dimension_mismatch_rejected(self):
        tensor = TensorPolynomialModel(1, 1)
        with pytest.raises(ValueError):
            tensor.fit([1.0, 2.0], [1.0], [1.0, 2.0])
