"""Unit tests for the 6T SRAM cell and its discharge stack."""

import numpy as np
import pytest

from repro.circuits.conditions import OperatingConditions
from repro.circuits.mismatch import MismatchSample
from repro.circuits.sram_cell import CellState, SramCell
from repro.circuits.technology import tsmc65_like


@pytest.fixture(scope="module")
def tech():
    return tsmc65_like()


@pytest.fixture(scope="module")
def conditions(tech):
    return OperatingConditions.nominal(tech)


class TestCellState:
    def test_from_bit(self):
        assert CellState.from_bit(0) is CellState.ZERO
        assert CellState.from_bit(1) is CellState.ONE

    def test_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            CellState.from_bit(2)

    def test_bit_property(self):
        assert CellState.ONE.bit == 1
        assert CellState.ZERO.bit == 0


class TestDigitalBehaviour:
    def test_write_then_read(self, tech):
        cell = SramCell(tech)
        assert cell.read() == 0
        cell.write(1)
        assert cell.read() == 1
        assert cell.stored_bit == 1

    def test_invalid_write_rejected(self, tech):
        cell = SramCell(tech)
        with pytest.raises(ValueError):
            cell.write(3)


class TestDischargeCurrent:
    def test_stored_one_discharges_stored_zero_does_not(self, tech, conditions):
        one = SramCell(tech, CellState.ONE)
        zero = SramCell(tech, CellState.ZERO)
        i_one = float(one.discharge_current(1.0, 0.9, conditions))
        i_zero = float(zero.discharge_current(1.0, 0.9, conditions))
        assert i_one > 1e-6
        assert i_zero < i_one * 1e-3

    def test_current_grows_with_wordline_voltage(self, tech, conditions):
        cell = SramCell(tech, CellState.ONE)
        currents = cell.discharge_current(1.0, np.linspace(0.4, 1.0, 7), conditions)
        assert np.all(np.diff(currents) > 0.0)

    def test_current_is_stack_limited(self, tech, conditions):
        """The series stack must conduct less than the access device alone."""
        from repro.circuits.mosfet import access_device

        cell = SramCell(tech, CellState.ONE)
        stack_current = float(cell.discharge_current(1.0, 0.9, conditions))
        access_only = float(access_device(tech).drain_current(0.9, 1.0, conditions))
        assert 0.0 < stack_current < access_only

    def test_mismatch_shifts_current(self, tech, conditions):
        nominal = SramCell(tech, CellState.ONE)
        weak = SramCell(
            tech, CellState.ONE, MismatchSample(vth_access=+0.06)
        )
        assert float(weak.discharge_current(1.0, 0.8, conditions)) < float(
            nominal.discharge_current(1.0, 0.8, conditions)
        )

    def test_saturation_limit_follows_eq2(self, tech, conditions):
        cell = SramCell(tech, CellState.ONE)
        limit = cell.saturation_limit(0.9, conditions)
        params_vth = tech.threshold_voltage(conditions.temperature)
        assert limit == pytest.approx(0.9 - params_vth, abs=1e-9)
        assert cell.saturation_limit(0.1, conditions) == 0.0

    def test_stack_current_vectorises_over_bitline_voltage(self, tech, conditions):
        cell = SramCell(tech, CellState.ONE)
        stack = cell.discharge_stack(conditions)
        v_bl = np.linspace(0.2, 1.0, 9)
        currents = stack.current(v_bl, 0.9)
        assert currents.shape == v_bl.shape
        # Deeply discharged bit-lines push the access device into triode,
        # so the current must drop for low bit-line voltages.
        assert currents[0] < currents[-1]
