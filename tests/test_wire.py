"""Fuzz and conformance tests for the binary wire framing (repro.wire).

The binary-frame rules under test:

* a JSON header line carrying ``{"binary": N}`` is followed by exactly
  ``N`` raw payload bytes, attached under ``wire.PAYLOAD_KEY``;
* the declared length is validated against ``MAX_BINARY_BYTES`` *before*
  any payload byte is buffered;
* every malformed input — torn payloads, bad declared lengths, reserved
  keys inside the JSON line — raises :class:`ProtocolError` promptly
  instead of hanging the reader or growing its buffer;
* :func:`pack_arrays` / :func:`unpack_arrays` round-trip NumPy arrays
  bit-exactly and reject inconsistent specs.
"""

import asyncio
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import wire

#: Every read in this file is wrapped in a timeout: a reader that blocks on
#: malformed input is exactly the bug the suite exists to catch.
READ_TIMEOUT = 5.0


def _read_all(data: bytes, limit: int = wire.MAX_MESSAGE_BYTES):
    """Feed ``data`` + EOF into a fresh stream and read messages until EOF."""

    async def scenario():
        reader = asyncio.StreamReader(limit=limit)
        reader.feed_data(data)
        reader.feed_eof()
        messages = []
        while True:
            message = await asyncio.wait_for(
                wire.read_message(reader), timeout=READ_TIMEOUT
            )
            if message is None:
                return messages
            messages.append(message)

    return asyncio.run(scenario())


def _read_one(data: bytes, limit: int = wire.MAX_MESSAGE_BYTES):
    return _read_all(data, limit=limit)[0]


class TestBinaryRoundTrip:
    def test_payload_attached_under_reserved_key(self):
        frame = wire.encode_binary({"op": "blob", "chunk": 3}, b"\x00\x01\xffdata")
        message = _read_one(frame)
        assert message["op"] == "blob"
        assert message["chunk"] == 3
        assert message[wire.BINARY_KEY] == 7
        assert message[wire.PAYLOAD_KEY] == b"\x00\x01\xffdata"

    def test_zero_length_payload(self):
        frame = wire.encode_binary({"op": "empty"}, b"")
        message = _read_one(frame)
        assert message[wire.PAYLOAD_KEY] == b""

    def test_binary_and_text_frames_interleave_on_one_stream(self):
        stream = (
            wire.encode_message({"op": "a"})
            + wire.encode_binary({"op": "b"}, b"xyz")
            + wire.encode_message({"op": "c"})
        )
        messages = _read_all(stream)
        assert [m["op"] for m in messages] == ["a", "b", "c"]
        assert messages[1][wire.PAYLOAD_KEY] == b"xyz"
        assert wire.PAYLOAD_KEY not in messages[0]

    def test_payload_bytes_are_opaque_even_when_they_look_like_json(self):
        """JSON lines inside a declared payload are payload, not frames."""
        payload = wire.encode_message({"op": "smuggled"}) * 3
        stream = wire.encode_binary({"op": "outer"}, payload) + wire.encode_message(
            {"op": "after"}
        )
        messages = _read_all(stream)
        assert [m["op"] for m in messages] == ["outer", "after"]
        assert messages[0][wire.PAYLOAD_KEY] == payload

    @given(payload=st.binary(max_size=4096), extra=st.integers(min_value=0, max_value=32))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_any_payload(self, payload, extra):
        tail = wire.encode_message({"op": "tail", "n": extra})
        messages = _read_all(wire.encode_binary({"op": "fuzz"}, payload) + tail)
        assert messages[0][wire.PAYLOAD_KEY] == payload
        assert messages[1]["n"] == extra


class TestMalformedFrames:
    def test_torn_payload_raises_promptly(self):
        frame = wire.encode_binary({"op": "torn"}, b"x" * 100)
        with pytest.raises(wire.ProtocolError, match="mid-payload"):
            _read_one(frame[:-40])

    def test_declared_longer_than_actual(self):
        header = wire.encode_message({wire.BINARY_KEY: 1000})
        with pytest.raises(wire.ProtocolError, match="mid-payload"):
            _read_one(header + b"only-a-few-bytes")

    def test_declared_above_bound_rejected_before_buffering(self):
        header = wire.encode_message({wire.BINARY_KEY: wire.MAX_BINARY_BYTES + 1})
        with pytest.raises(wire.ProtocolError, match="exceeds"):
            # No payload follows at all: the length alone must be rejected.
            _read_one(header)

    def test_absurd_declared_length_needs_no_memory(self):
        header = wire.encode_message({wire.BINARY_KEY: 10**18})
        with pytest.raises(wire.ProtocolError, match="exceeds"):
            _read_one(header)

    @pytest.mark.parametrize("declared", [-1, -(10**9), True, False, 1.5, "12", None, [4]])
    def test_bad_declared_length_types(self, declared):
        line = json.dumps({"op": "x", wire.BINARY_KEY: declared}).encode() + b"\n"
        with pytest.raises(wire.ProtocolError):
            _read_one(line)

    def test_reserved_payload_key_inside_line_rejected(self):
        line = json.dumps({"op": "x", wire.PAYLOAD_KEY: "spoof"}).encode() + b"\n"
        with pytest.raises(wire.ProtocolError, match="reserved"):
            _read_one(line)

    def test_encode_binary_rejects_reserved_keys(self):
        with pytest.raises(wire.ProtocolError):
            wire.encode_binary({wire.BINARY_KEY: 1}, b"")
        with pytest.raises(wire.ProtocolError):
            wire.encode_binary({wire.PAYLOAD_KEY: b""}, b"")

    def test_encode_binary_rejects_oversize_payload(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_BINARY_BYTES", 16)
        with pytest.raises(wire.ProtocolError, match="exceeds"):
            wire.encode_binary({"op": "big"}, b"x" * 17)

    @given(data=st.binary(max_size=2048))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_bytes_never_hang(self, data):
        """Any byte stream either parses or raises ProtocolError — never hangs."""
        try:
            _read_all(data, limit=4096)
        except wire.ProtocolError:
            pass


class TestArrayCodec:
    @pytest.mark.parametrize(
        "dtype", ["<f8", "<f4", "<i8", "<i4", "<u2", "|u1", "<c16", "|b1"]
    )
    def test_round_trip_preserves_bytes_dtype_shape(self, dtype):
        rng = np.random.default_rng(11)
        arrays = [
            (rng.standard_normal((3, 4, 2)) * 100).astype(dtype),
            np.zeros(0, dtype=dtype),
            (rng.standard_normal(7) * 10).astype(dtype),
        ]
        specs, payload = wire.pack_arrays(arrays)
        restored = wire.unpack_arrays(specs, payload)
        assert len(restored) == len(arrays)
        for original, copy in zip(arrays, restored):
            assert copy.dtype == original.dtype
            assert copy.shape == original.shape
            assert copy.tobytes() == original.tobytes()

    def test_unpacked_arrays_are_zero_copy_views(self):
        array = np.arange(12, dtype=np.float64).reshape(3, 4)
        specs, payload = wire.pack_arrays([array])
        restored = wire.unpack_arrays(specs, payload)[0]
        assert restored.base is not None  # a view, not a copy
        assert not restored.flags.writeable

    def test_non_contiguous_input_is_packed_contiguously(self):
        array = np.arange(20, dtype=np.float64).reshape(4, 5)[:, ::2]
        specs, payload = wire.pack_arrays([array])
        restored = wire.unpack_arrays(specs, payload)[0]
        assert np.array_equal(restored, array)

    def test_rejects_non_arrays_and_object_dtypes(self):
        with pytest.raises(wire.ProtocolError):
            wire.pack_arrays([[1, 2, 3]])
        with pytest.raises(wire.ProtocolError):
            wire.pack_arrays([np.array([object()])])
        with pytest.raises(wire.ProtocolError):
            wire.unpack_arrays([{"dtype": "|O", "shape": [1]}], b"")

    def test_rejects_short_payload_and_trailing_bytes(self):
        specs, payload = wire.pack_arrays([np.arange(4, dtype=np.float64)])
        with pytest.raises(wire.ProtocolError, match="shorter"):
            wire.unpack_arrays(specs, payload[:-1])
        with pytest.raises(wire.ProtocolError, match="trailing"):
            wire.unpack_arrays(specs, payload + b"\x00")

    def test_rejects_malformed_specs(self):
        for spec in (
            "not-a-dict",
            {},
            {"dtype": "<f8"},
            {"dtype": "no-such-dtype", "shape": [1]},
            {"dtype": "<f8", "shape": [-1]},
            {"dtype": "<f8", "shape": "oops"},
        ):
            with pytest.raises(wire.ProtocolError):
                wire.unpack_arrays([spec], b"\x00" * 8)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        count=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_fuzzed_arrays_survive_a_full_wire_trip(self, seed, count):
        rng = np.random.default_rng(seed)
        dtypes = ["<f8", "<f4", "<i8", "<i2", "|u1"]
        arrays = []
        for _ in range(count):
            shape = tuple(int(n) for n in rng.integers(0, 5, size=int(rng.integers(1, 4))))
            dtype = dtypes[int(rng.integers(0, len(dtypes)))]
            arrays.append((rng.standard_normal(shape) * 50).astype(dtype))
        specs, payload = wire.pack_arrays(arrays)
        frame = wire.encode_binary({"op": "arrays", "arrays": specs}, payload)
        message = _read_one(frame)
        restored = wire.unpack_arrays(message["arrays"], message[wire.PAYLOAD_KEY])
        for original, copy in zip(arrays, restored):
            assert copy.dtype == original.dtype
            assert copy.shape == original.shape
            assert copy.tobytes() == original.tobytes()
