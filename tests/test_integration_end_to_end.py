"""End-to-end integration tests covering the whole OPTIMA flow.

These tests chain the layers the way the paper's experiments do:
reference characterisation -> model fitting -> multiplier -> design-space
exploration -> DNN injection, asserting the qualitative results the paper
reports (orderings and collapse behaviour, not absolute numbers).
"""

import numpy as np
import pytest

from repro.core.dse import DesignSpace, explore_design_space, select_corners
from repro.dnn.datasets import make_synthetic_image_dataset
from repro.dnn.evaluation import evaluate_backends
from repro.dnn.imc_injection import LutBackend
from repro.dnn.models import build_vgg16_like
from repro.dnn.quantization import quantize_network
from repro.dnn.training import TrainingConfig, train_network
from repro.multiplier.imac import InSramMultiplier
from repro.multiplier.lut import ProductLookupTable
from repro.multiplier.error_analysis import analyze_input_space


class TestModelAgainstReference:
    def test_model_suite_tracks_reference_across_pvt(self, suite, solver, nominal_conditions):
        """Model predictions stay within a few mV of the ODE reference."""
        test_points = [
            (0.4e-9, 0.6, nominal_conditions),
            (1.2e-9, 0.85, nominal_conditions.with_vdd(0.95)),
            (0.8e-9, 0.7, nominal_conditions.with_temperature_celsius(60.0)),
        ]
        for time, v_wl, conditions in test_points:
            reference = float(solver.discharge_at(v_wl, time, conditions))
            predicted = float(suite.discharge_voltage(time, v_wl, conditions))
            assert predicted == pytest.approx(reference, abs=20e-3)


class TestCornerStory:
    """The qualitative Table I / Fig. 7 / Fig. 8 story of the paper."""

    @pytest.fixture(scope="class")
    def exploration(self, suite):
        return explore_design_space(suite)

    def test_fom_corner_is_most_accurate_of_selected(self, exploration):
        corners = {c.name: c.point for c in exploration.selected_corners()}
        assert corners["fom"].mean_error_lsb <= corners["power"].mean_error_lsb
        assert corners["fom"].mean_error_lsb <= corners["variation"].mean_error_lsb

    def test_power_corner_is_cheapest(self, exploration):
        corners = {c.name: c.point for c in exploration.selected_corners()}
        assert corners["power"].energy_per_multiplication <= corners["fom"].energy_per_multiplication
        assert (
            corners["power"].energy_per_multiplication
            <= corners["variation"].energy_per_multiplication
        )

    def test_variation_corner_has_worst_small_operand_error(self, exploration):
        corners = {c.name: c.point for c in exploration.selected_corners()}
        variation_small = corners["variation"].analysis.small_operand_error()
        fom_small = corners["fom"].analysis.small_operand_error()
        assert variation_small > fom_small

    def test_energy_scale_matches_paper_order_of_magnitude(self, exploration):
        """E_mul lands in the tens of femtojoule, E_op around a picojoule."""
        for corner in exploration.selected_corners():
            energy_fj = corner.point.energy_per_multiplication * 1e15
            assert 10.0 < energy_fj < 200.0
            operation_pj = corner.point.analysis.energy_per_operation * 1e12
            assert 0.1 < operation_pj < 5.0


class TestDnnStory:
    """The qualitative Table II / III story on a tiny synthetic setup."""

    @pytest.fixture(scope="class")
    def dnn_results(self, suite):
        dataset = make_synthetic_image_dataset(
            classes=6, train_per_class=40, test_per_class=12, image_size=8, noise=0.12, seed=21
        )
        network = build_vgg16_like((8, 8, 3), classes=dataset.classes)
        train_network(
            network, dataset, TrainingConfig(epochs=7, batch_size=32, learning_rate=0.1, seed=2)
        )
        quantized = quantize_network(network, dataset.train_images[:96])

        corners = select_corners(explore_design_space(suite))
        backends = {
            name: LutBackend(
                ProductLookupTable.from_multiplier(InSramMultiplier(suite, config)), name=name
            )
            for name, config in corners.items()
        }
        return evaluate_backends(network, quantized, backends, dataset)

    def test_all_modes_present(self, dnn_results):
        assert set(dnn_results) == {"float32", "int4", "fom", "power", "variation"}

    def test_float_and_int4_learn_the_task(self, dnn_results):
        assert dnn_results["float32"].top1 > 0.65
        assert dnn_results["int4"].top1 > 0.55

    def test_fom_corner_is_the_best_in_memory_corner(self, dnn_results):
        assert dnn_results["fom"].top1 >= dnn_results["variation"].top1
        assert dnn_results["fom"].top1 >= dnn_results["power"].top1 - 0.05
        # The fom corner stays within reach of the digital INT4 baseline
        # (the gap is larger than the paper's sub-percent one because our
        # substrate's fom corner has more small-operand error; see
        # EXPERIMENTS.md).
        assert dnn_results["fom"].top1 >= dnn_results["int4"].top1 - 0.4

    def test_variation_corner_collapses(self, dnn_results):
        """The paper's headline DNN observation: the variation corner loses
        a large fraction of the baseline top-1 accuracy."""
        assert dnn_results["variation"].top1 < dnn_results["int4"].top1 - 0.2
        assert dnn_results["variation"].top1 <= dnn_results["fom"].top1

    def test_mode_ordering(self, dnn_results):
        assert dnn_results["float32"].top1 >= dnn_results["int4"].top1 - 0.05
        assert dnn_results["fom"].top1 >= dnn_results["variation"].top1

    def test_top5_at_least_top1(self, dnn_results):
        for report in dnn_results.values():
            assert report.top5 >= report.top1


class TestMultiplierValidation:
    def test_optima_multiplier_matches_reference_multiplier_statistics(
        self, technology, suite, fom_config
    ):
        """Mean input-space error of fast vs reference models is comparable."""
        from repro.multiplier.reference import ReferenceMultiplier

        fast_analysis = analyze_input_space(InSramMultiplier(suite, fom_config))
        reference_analysis = analyze_input_space(ReferenceMultiplier(technology, fom_config))
        assert fast_analysis.mean_error_lsb == pytest.approx(
            reference_analysis.mean_error_lsb, abs=4.0
        )
