"""repro.lint — framework, the six checkers, suppressions, baseline, CLI.

Every rule gets a violating fixture module (tmp-path) and its compliant
twin; the acceptance contract — flipping a guarded invariant makes
``python -m repro lint`` exit non-zero with the right rule id — is
demonstrated here, not by hand.  The final class lints the *real*
``src/`` tree and requires it clean against the committed baseline.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.lint import ALL_CHECKERS, RULES, Baseline, Finding, run_lint
from repro.lint.checkers import load_protocol_vocabulary
from repro.lint.core import parse_suppressions
from repro.runtime.cli import main as cli_main

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "lint-baseline.json"


def lint_source(tmp_path, source, name="module.py", subdir=""):
    """Write ``source`` to a tmp module and lint it with every rule."""
    directory = tmp_path / subdir if subdir else tmp_path
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / name
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([target])


def rules_of(result):
    return sorted({finding.rule for finding in result.findings})


# ----------------------------------------------------------------------
# REPRO-ASYNC01 — blocking calls in async bodies
# ----------------------------------------------------------------------
class TestAsyncSafety:
    def test_time_sleep_in_async_def_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            async def handler():
                time.sleep(1.0)
            """,
        )
        assert rules_of(result) == ["REPRO-ASYNC01"]
        assert "asyncio.sleep" in result.findings[0].message

    def test_asyncio_sleep_is_quiet(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import asyncio

            async def handler():
                await asyncio.sleep(1.0)
            """,
        )
        assert result.findings == []

    @pytest.mark.parametrize(
        "call",
        [
            "socket.create_connection(('h', 1))",
            "subprocess.run(['ls'])",
            "subprocess.check_output(['ls'])",
            "open('f.txt')",
            "future.result()",
            "path.read_text()",
        ],
    )
    def test_blocking_calls_fire(self, tmp_path, call):
        result = lint_source(
            tmp_path,
            f"""
            import socket, subprocess

            async def handler(future, path):
                return {call}
            """,
        )
        assert rules_of(result) == ["REPRO-ASYNC01"]

    def test_from_time_import_sleep_alias_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from time import sleep as snooze

            async def handler():
                snooze(0.1)
            """,
        )
        assert rules_of(result) == ["REPRO-ASYNC01"]

    def test_sync_nested_def_is_an_executor_boundary(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            async def handler(loop):
                def blocking():
                    time.sleep(1.0)  # runs on the executor, not the loop
                await loop.run_in_executor(None, blocking)
            """,
        )
        assert result.findings == []

    def test_sleep_outside_async_is_quiet(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            def worker_loop():
                time.sleep(1.0)
            """,
        )
        assert result.findings == []

    def test_result_with_timeout_is_quiet(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            async def handler(future):
                return future.result(10)
            """,
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# REPRO-DET01 — unseeded randomness in solver paths
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_legacy_np_random_in_circuits_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import numpy as np

            def noise():
                return np.random.rand(8)
            """,
            subdir="circuits",
        )
        assert rules_of(result) == ["REPRO-DET01"]
        assert "np.random.rand" in result.findings[0].message

    def test_argless_default_rng_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import numpy as np

            def build():
                return np.random.default_rng()
            """,
            subdir="core",
        )
        assert rules_of(result) == ["REPRO-DET01"]

    def test_seeded_generator_idiom_is_quiet(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import numpy as np

            def shard(seed, samples):
                children = np.random.SeedSequence(seed).spawn(samples)
                return [np.random.default_rng(child) for child in children]
            """,
            subdir="dnn",
        )
        assert result.findings == []

    def test_stdlib_random_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random

            def jitter():
                return random.random()
            """,
            subdir="eventsim",
        )
        assert rules_of(result) == ["REPRO-DET01"]

    def test_from_random_import_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from random import choice

            def pick(items):
                return choice(items)
            """,
            subdir="converters",
        )
        assert rules_of(result) == ["REPRO-DET01"]

    def test_outside_solver_packages_is_out_of_scope(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import numpy as np

            def noise():
                return np.random.rand(8)
            """,
            subdir="benchmarks",
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# REPRO-WIRE01 — pickle outside the allowlisted shim
# ----------------------------------------------------------------------
class TestWireSafety:
    def test_pickle_loads_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import pickle

            def decode(blob):
                return pickle.loads(blob)
            """,
        )
        assert rules_of(result) == ["REPRO-WIRE01"]
        assert "repro/cluster/protocol.py" in result.findings[0].message

    def test_from_pickle_import_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from pickle import dumps

            def encode(obj):
                return dumps(obj)
            """,
        )
        assert rules_of(result) == ["REPRO-WIRE01"]

    def test_the_allowlisted_shim_path_is_exempt(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import pickle

            def decode(blob):
                return pickle.loads(blob)
            """,
            name="protocol.py",
            subdir="repro/cluster",
        )
        assert result.findings == []

    def test_allow_pickle_true_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import numpy as np

            def read(path):
                return np.load(path, allow_pickle=True)
            """,
        )
        assert rules_of(result) == ["REPRO-WIRE01"]

    def test_allow_pickle_false_is_quiet(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import numpy as np

            def read(path):
                return np.load(path, allow_pickle=False)
            """,
        )
        assert result.findings == []

    def test_frombuffer_outside_the_codecs_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import numpy as np

            def decode(blob):
                return np.frombuffer(blob, dtype=np.float64)
            """,
        )
        assert rules_of(result) == ["REPRO-WIRE01"]
        assert "unpack_arrays" in result.findings[0].message

    def test_from_numpy_import_frombuffer_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from numpy import frombuffer

            def decode(blob):
                return frombuffer(blob, dtype="<f8")
            """,
        )
        assert rules_of(result) == ["REPRO-WIRE01"]

    @pytest.mark.parametrize(
        "name, subdir", [("wire.py", "repro"), ("cache.py", "repro/runtime")]
    )
    def test_the_validated_codecs_are_exempt(self, tmp_path, name, subdir):
        result = lint_source(
            tmp_path,
            """
            import numpy as np

            def decode(blob):
                return np.frombuffer(blob, dtype=np.uint8)
            """,
            name=name,
            subdir=subdir,
        )
        assert result.findings == []

    def test_shipped_shim_really_is_the_only_pickle_surface(self):
        """The allowlist is not aspirational: linting src finds no
        pickle call outside the shim — and no raw-buffer decoding
        outside the validated codecs (WIRE01 never appears over src)."""
        result = run_lint([SRC])
        assert "REPRO-WIRE01" not in rules_of(result)


# ----------------------------------------------------------------------
# REPRO-ERR01 — silent broad exception swallows
# ----------------------------------------------------------------------
class TestSilentFailure:
    @pytest.mark.parametrize(
        "handler",
        ["except Exception:", "except BaseException:", "except:",
         "except (ValueError, Exception):"],
    )
    def test_silent_broad_handler_fires(self, tmp_path, handler):
        result = lint_source(
            tmp_path,
            f"""
            def fragile():
                try:
                    work()
                {handler}
                    pass
            """,
        )
        assert rules_of(result) == ["REPRO-ERR01"]

    @pytest.mark.parametrize(
        "body",
        [
            "raise",
            "log.warning('boom: %s', error)",
            "errors.inc()",
            "failures.append(error)",
            "return fallback()",
        ],
    )
    def test_handler_that_does_something_is_quiet(self, tmp_path, body):
        result = lint_source(
            tmp_path,
            f"""
            def fragile(log, errors, failures, fallback):
                try:
                    work()
                except Exception as error:
                    {body}
            """,
        )
        assert result.findings == []

    def test_narrow_handler_is_quiet(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def probe(path):
                try:
                    return path.stat()
                except FileNotFoundError:
                    pass
            """,
        )
        assert result.findings == []

    def test_bare_constant_return_still_counts_as_silent(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def fragile():
                try:
                    return work()
                except Exception:
                    return None
            """,
        )
        assert rules_of(result) == ["REPRO-ERR01"]


# ----------------------------------------------------------------------
# REPRO-OBS01 — metric naming at construction sites
# ----------------------------------------------------------------------
class TestMetricsNaming:
    def test_bad_name_on_registry_factory_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from repro.obs import REGISTRY

            JOBS = REGISTRY.counter("jobs_executed")
            """,
        )
        assert rules_of(result) == ["REPRO-OBS01"]
        assert "repro_[a-z_]+_(total|bytes|seconds|ratio)" in result.findings[0].message

    def test_bad_name_on_direct_constructor_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from repro.obs import Counter, Gauge

            A = Counter("repro_engine_jobs")      # missing unit suffix
            B = Gauge("repro_cache_bytes")        # fine
            """,
        )
        assert rules_of(result) == ["REPRO-OBS01"]
        assert len(result.findings) == 1

    def test_conforming_names_are_quiet(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from repro import obs

            JOBS = obs.counter("repro_demo_jobs_total", "Jobs.", labels=("op",))
            SIZE = obs.gauge("repro_demo_cache_bytes")
            TIME = obs.histogram("repro_demo_run_seconds")
            """,
        )
        assert result.findings == []

    def test_bad_label_name_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from repro import obs

            JOBS = obs.counter("repro_demo_jobs_total", labels=("Op-Kind",))
            """,
        )
        assert rules_of(result) == ["REPRO-OBS01"]

    def test_unrelated_counter_calls_are_ignored(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from collections import Counter as Multiset

            def tally(words, clock):
                counts = clock.counter("ticks")   # not a metrics registry
                return Multiset(words)
            """,
        )
        # collections.Counter("ticks") via alias and a non-registry
        # receiver: neither is a metric construction site.
        assert result.findings == []

    def test_pattern_is_pinned_to_the_runtime_registry_rule(self):
        """The checker's regex must be the one repro.obs enforces."""
        from repro.lint.checkers.metrics_naming import (
            LABEL_NAME_PATTERN,
            METRIC_NAME_PATTERN,
        )
        from repro.obs.metrics import LABEL_NAME_RE, METRIC_NAME_RE

        assert METRIC_NAME_PATTERN == METRIC_NAME_RE.pattern
        assert LABEL_NAME_PATTERN == LABEL_NAME_RE.pattern


# ----------------------------------------------------------------------
# REPRO-PROTO01 — frame-type literals vs the protocol constants
# ----------------------------------------------------------------------
class TestProtocolFrames:
    def test_unknown_op_in_dict_literal_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def request():
                return {"op": "frobnicate", "id": "r1"}
            """,
        )
        assert rules_of(result) == ["REPRO-PROTO01"]
        assert '"frobnicate"' in result.findings[0].message

    def test_typo_at_match_site_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def dispatch(message):
                if message.get("event") == "chunk-done":   # typo: underscore
                    return True
            """,
        )
        assert rules_of(result) == ["REPRO-PROTO01"]

    def test_documented_frames_are_quiet(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def roundtrip(message):
                request = {"op": "submit", "id": "r1"}
                event = message.get("event")
                if event in ("accepted", "progress", "result", "error"):
                    return request
                if message.get("op") == "chunk_done":
                    return {"event": "welcome"}
            """,
        )
        assert result.findings == []

    def test_membership_tuple_is_checked_elementwise(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def classify(op):
                return op in ("status", "ping", "bogus_op")
            """,
        )
        assert rules_of(result) == ["REPRO-PROTO01"]
        assert '"bogus_op"' in result.findings[0].message

    def test_match_statement_cases_are_checked(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def dispatch(message):
                op = message.get("op")
                match op:
                    case "submit" | "cancel":
                        return 1
                    case "banana":
                        return 2
            """,
        )
        assert rules_of(result) == ["REPRO-PROTO01"]
        assert '"banana"' in result.findings[0].message

    def test_service_files_use_the_service_vocabulary(self, tmp_path):
        # "hello" is a cluster op; inside the service package it is a
        # violation even though the union vocabulary knows it.
        result = lint_source(
            tmp_path,
            """
            def request():
                return {"op": "hello"}
            """,
            subdir="service",
        )
        assert rules_of(result) == ["REPRO-PROTO01"]
        assert "service protocol" in result.findings[0].message

    def test_vocabulary_is_harvested_from_the_shipped_constants(self):
        from repro.cluster import protocol as cluster_protocol
        from repro.service import protocol as service_protocol

        vocabulary = load_protocol_vocabulary()
        assert vocabulary["service"]["op"] == set(service_protocol.SERVICE_OPS)
        assert vocabulary["service"]["event"] == set(
            service_protocol.SERVICE_EVENTS
        )
        assert vocabulary["cluster"]["op"] == set(
            cluster_protocol.WORKER_OPS
        ) | set(cluster_protocol.CONTROL_OPS)
        assert vocabulary["cluster"]["event"] == set(
            cluster_protocol.COORDINATOR_EVENTS
        )

    def test_gateway_vocabulary_is_harvested_from_routes_module(self):
        from repro import gateway

        vocabulary = load_protocol_vocabulary()
        assert vocabulary["gateway"]["event"] == set(gateway.SSE_EVENTS)
        assert vocabulary["gateway"]["route"] == set(gateway.ROUTES)
        assert vocabulary["any"]["route"] == set(gateway.ROUTES)
        assert set(gateway.SSE_EVENTS) <= vocabulary["any"]["event"]

    def test_unknown_route_shaped_literal_fires_anywhere(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def link():
                return "GET /v1/sweeps/{id}/resutl"   # typo'd route
            """,
        )
        assert rules_of(result) == ["REPRO-PROTO01"]
        assert "route table" in result.findings[0].message

    def test_declared_routes_and_raw_request_lines_are_quiet(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def requests():
                table = ("POST /v1/sweeps", "GET /healthz")
                raw = "GET /metrics HTTP/1.0"   # request line, not a route
                return table, raw
            """,
        )
        assert result.findings == []

    def test_gateway_files_use_the_sse_vocabulary(self, tmp_path):
        # "accepted" is a service event; inside the gateway package the
        # event vocabulary is the SSE stream's.
        result = lint_source(
            tmp_path,
            """
            def frame(event):
                if event == "accepted":
                    return 1
                return event in ("snapshot", "progress", "obs", "done")
            """,
            subdir="gateway",
        )
        assert rules_of(result) == ["REPRO-PROTO01"]
        assert '"accepted"' in result.findings[0].message


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_each_rule_is_suppressible_inline(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time, pickle

            async def handler(blob):
                time.sleep(1)  # repro: ignore[REPRO-ASYNC01] -- test fixture
                return pickle.loads(blob)  # repro: ignore[REPRO-WIRE01] -- test fixture
            """,
        )
        assert result.findings == []
        assert result.suppressed == 2

    def test_suppression_is_rule_specific(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            async def handler():
                time.sleep(1)  # repro: ignore[REPRO-WIRE01] -- wrong rule id
            """,
        )
        assert rules_of(result) == ["REPRO-ASYNC01"]

    def test_star_suppresses_everything_on_the_line(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import pickle

            def decode(blob):
                return pickle.loads(blob)  # repro: ignore[*] -- fixture
            """,
        )
        assert result.findings == []

    def test_suppression_only_covers_its_own_line(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import pickle

            def decode(blob):
                first = pickle.loads(blob)  # repro: ignore[REPRO-WIRE01] -- one
                return pickle.loads(first)
            """,
        )
        assert len(result.findings) == 1
        assert result.findings[0].line == 6

    def test_parse_suppressions_formats(self):
        parsed = parse_suppressions(
            "x = 1  # repro: ignore[REPRO-DET01, REPRO-ERR01] -- reason\n"
            "y = 2  # repro: ignore[*]\n"
            "z = 3  # unrelated comment\n"
        )
        assert parsed == {1: {"REPRO-DET01", "REPRO-ERR01"}, 2: {"*"}}


# ----------------------------------------------------------------------
# Baseline round-trip
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip_absorbs_recorded_findings(self, tmp_path):
        target = tmp_path / "legacy.py"
        target.write_text(
            "import pickle\n\ndef decode(blob):\n    return pickle.loads(blob)\n"
        )
        findings = run_lint([target]).findings
        assert len(findings) == 1
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).write(baseline_path)

        reloaded = Baseline.load(baseline_path)
        fresh, absorbed = reloaded.filter(run_lint([target]).findings)
        assert fresh == [] and absorbed == 1

    def test_line_moves_stay_absorbed_but_duplicates_do_not(self, tmp_path):
        target = tmp_path / "legacy.py"
        target.write_text(
            "import pickle\n\ndef decode(blob):\n    return pickle.loads(blob)\n"
        )
        baseline = Baseline.from_findings(run_lint([target]).findings)
        # Push the finding down the file: still absorbed.
        target.write_text(
            "import pickle\n\nPAD = 1\n\n\ndef decode(blob):\n"
            "    return pickle.loads(blob)\n"
        )
        fresh, absorbed = baseline.filter(run_lint([target]).findings)
        assert fresh == [] and absorbed == 1
        # A second identical violation exceeds the recorded multiplicity.
        target.write_text(
            "import pickle\n\ndef decode(blob):\n    return pickle.loads(blob)\n"
            "\n\ndef decode2(blob):\n    return pickle.loads(blob)\n"
        )
        fresh, absorbed = baseline.filter(run_lint([target]).findings)
        assert len(fresh) == 1 and absorbed == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            Baseline.load(bad)


# ----------------------------------------------------------------------
# CLI: exit codes, formats, --rule, --write-baseline
# ----------------------------------------------------------------------
class TestCli:
    def _violation(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(
            "import time\n\nasync def handler():\n    time.sleep(1)\n"
        )
        return target

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        clean = tmp_path / "ok.py"
        clean.write_text("import asyncio\n\nasync def h():\n    await asyncio.sleep(1)\n")
        assert cli_main(["lint", str(clean), "--no-baseline"]) == 0

    def test_exit_one_with_rule_id_on_violation(self, tmp_path, capsys):
        target = self._violation(tmp_path)
        code = cli_main(["lint", str(target), "--no-baseline"])
        captured = capsys.readouterr()
        assert code == 1
        assert "REPRO-ASYNC01" in captured.out
        assert f"{target.as_posix()}:4:" in captured.out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        target = self._violation(tmp_path)
        code = cli_main(["lint", str(target), "--no-baseline", "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["files_checked"] == 1
        assert document["findings"][0]["rule"] == "REPRO-ASYNC01"
        assert document["findings"][0]["line"] == 4
        assert sorted(document["rules"]) == sorted(RULES)

    def test_rule_filter_restricts_the_run(self, tmp_path):
        target = self._violation(tmp_path)
        assert cli_main(["lint", str(target), "--no-baseline", "--rule", "REPRO-DET01"]) == 0
        assert cli_main(["lint", str(target), "--no-baseline", "--rule", "REPRO-ASYNC01"]) == 1

    def test_unknown_rule_is_a_usage_error(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path), "--rule", "REPRO-NOPE"]) == 2

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path / "absent")]) == 2

    def test_write_baseline_then_clean_gate(self, tmp_path, capsys):
        target = self._violation(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert cli_main(["lint", str(target), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert cli_main(["lint", str(target), "--baseline", str(baseline)]) == 0
        # A *new* violation in the same tree still fails the gate.
        second = tmp_path / "worse.py"
        second.write_text("import pickle\n\ndef d(b):\n    return pickle.loads(b)\n")
        code = cli_main(["lint", str(tmp_path), "--baseline", str(baseline)])
        captured = capsys.readouterr()
        assert code == 1
        assert "REPRO-WIRE01" in captured.out
        assert "baselined" in captured.err

    def test_list_rules_names_every_checker(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_module_entry_point_subprocess(self, tmp_path):
        """The acceptance-criteria invocation, end to end."""
        target = self._violation(tmp_path)
        process = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(target), "--no-baseline"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
            cwd=str(tmp_path),
        )
        assert process.returncode == 1
        assert "REPRO-ASYNC01" in process.stdout

    def test_syntax_error_reports_parse_finding(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def nope(:\n")
        assert cli_main(["lint", str(broken), "--no-baseline"]) == 1
        assert "REPRO-PARSE" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Self-check: the shipped tree is clean
# ----------------------------------------------------------------------
class TestShippedTree:
    def test_src_is_clean_against_the_committed_baseline(self):
        result = run_lint([SRC])
        baseline = Baseline.load(BASELINE)
        fresh, _ = baseline.filter(result.findings)
        assert fresh == [], "lint findings outside the committed baseline:\n" + "\n".join(
            finding.format_text() for finding in fresh
        )

    def test_committed_baseline_is_empty(self):
        """The satellite contract: fixes landed with the checkers, so the
        shipped baseline grandfathers nothing."""
        assert len(Baseline.load(BASELINE)) == 0

    def test_flipping_an_invariant_fails_the_gate(self, tmp_path):
        """Acceptance criterion: reintroduce each guarded violation into a
        copy of a real source file and the gate must go non-zero with the
        right rule id."""
        flips = {
            "REPRO-ASYNC01": (
                SRC / "repro/httpd.py",
                "    request_line = await asyncio.wait_for(reader.readline(), timeout=timeout)",
                "    import time; time.sleep(0.5)\n"
                "    request_line = await asyncio.wait_for(reader.readline(), timeout=timeout)",
            ),
            "REPRO-DET01": (
                SRC / "repro/circuits/mismatch.py",
                "        self._rng = np.random.default_rng(seed)",
                "        self._rng = np.random.default_rng(seed)\n"
                "        self._noise = np.random.rand(4)",
            ),
            "REPRO-WIRE01": (
                SRC / "repro/wire.py",
                "import json",
                "import json\nimport pickle\n_eager = pickle.loads(b'')",
            ),
        }
        for rule, (origin, needle, replacement) in flips.items():
            source = origin.read_text(encoding="utf-8")
            assert needle in source, f"flip anchor moved in {origin}"
            mutated = tmp_path / origin.relative_to(SRC)
            mutated.parent.mkdir(parents=True, exist_ok=True)
            mutated.write_text(source.replace(needle, replacement), encoding="utf-8")
            result = run_lint([mutated])
            assert rule in rules_of(result), f"{rule} did not fire on the flip"

    def test_every_checker_has_rule_and_description(self):
        assert len(ALL_CHECKERS) == 6
        for checker in ALL_CHECKERS:
            assert checker.rule.startswith("REPRO-")
            assert checker.description

    def test_finding_text_format_is_clickable(self):
        finding = Finding("src/x.py", 3, 4, "REPRO-DET01", "boom")
        assert finding.format_text() == "src/x.py:3:4: REPRO-DET01 boom"
