"""Resilience-layer tests: cancellation, backpressure, journal recovery.

Covers the serving-tier hardening guarantees end to end:

* **cancellation** — an explicit ``cancel`` op and a client disconnect both
  abort a submitted sweep at the next job boundary (the progress stream
  goes quiet and the engine stops executing jobs); a single-flighted sweep
  only dies when its *last* subscriber cancels; the distributed executor
  forwards the abort to the coordinator, which revokes queued chunks and
  tells workers to drop in-flight ones;
* **backpressure** — per-connection in-flight, queued-bytes and
  token-bucket rate limits answer over-budget submits with structured
  ``busy`` errors (typed client-side), never by queueing unbounded work;
* **journal recovery** — a ``python -m repro serve`` subprocess SIGKILLed
  mid-sweep is restarted with ``--resume``; the interrupted job is
  re-enqueued from the journal and the resubmitted request is served from
  the cache, bit-identical to an uninterrupted run.

Every async scenario runs under ``asyncio.wait_for`` so a hung server fails
the test quickly instead of stalling the suite (the CI job adds an outer
``timeout`` guard on top).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.journal import JobJournal, default_journal_path
from repro.runtime import (
    ArtifactCache,
    Job,
    SweepCancelled,
    SweepEngine,
    SweepSpec,
    make_executor,
)
from repro.service import (
    ServiceBadRequestError,
    ServiceBusyError,
    ServiceCancelledError,
    ServiceClient,
    ServiceError,
    SweepService,
    register_workload,
    unregister_workload,
)
from repro.service import protocol

TIMEOUT = 30.0


def run(coro):
    """Run a coroutine with a hard timeout so nothing can hang the suite."""
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


@contextlib.asynccontextmanager
async def running_service(engine=None, **kwargs):
    service = SweepService(engine=engine, **kwargs)
    await service.start()
    try:
        yield service
    finally:
        await service.stop()


# ----------------------------------------------------------------------
# Toy workloads (module-level so cluster workers can unpickle the jobs)
# ----------------------------------------------------------------------
_EXECUTED = []


def _slow_job(value: int) -> int:
    time.sleep(0.02)
    _EXECUTED.append(value)
    return value


def _sleep_job(value: int) -> int:
    time.sleep(0.02)
    return value


def _slow_workload(params, engine):
    """An engine-routed sweep of slow jobs; cancellable between jobs."""
    count = int(params.get("n", 50))
    jobs = [Job(fn=_slow_job, args=(i,), name=f"slow[{i}]") for i in range(count)]
    return {"sum": sum(engine.run(SweepSpec("slow", jobs)))}


def _quick_workload(params, engine):
    return {"echo": params.get("value")}


@pytest.fixture
def toy_workloads():
    _EXECUTED.clear()
    register_workload("slow", _slow_workload)
    register_workload("quick", _quick_workload)
    try:
        yield
    finally:
        for name in ("slow", "quick"):
            unregister_workload(name)


# ----------------------------------------------------------------------
# Cancellation: engine + service
# ----------------------------------------------------------------------
class TestServiceCancellation:
    def test_explicit_cancel_stops_the_sweep(self, toy_workloads, tmp_path):
        """client.cancel() -> ServiceCancelledError, and the engine stops
        executing jobs (asserted via the execution count going quiet)."""

        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine) as service:
                host, port = service.address
                client = await ServiceClient(host, port).connect()
                ticks = []
                submit = asyncio.create_task(
                    client.submit("slow", {"n": 200}, on_progress=lambda d, t, l: ticks.append(d))
                )
                while not ticks:
                    await asyncio.sleep(0.005)
                flight = next(iter(service._flights.values()))
                assert await client.cancel() is True
                with pytest.raises(ServiceCancelledError):
                    await submit
                # wait for the sweep thread to hit the cancel check and die
                await asyncio.gather(flight.task, return_exceptions=True)
                executed_after_cancel = len(_EXECUTED)
                await asyncio.sleep(0.3)  # progress must stay quiet now
                await client.aclose()
                return executed_after_cancel, len(_EXECUTED), service.jobs_cancelled

        at_cancel, later, cancelled_count = run(scenario())
        assert later == at_cancel, "sweep kept executing after cancellation"
        assert later < 200, "sweep ran to completion despite cancel"
        assert cancelled_count == 1

    def test_client_disconnect_triggers_cancel(self, toy_workloads, tmp_path):
        """Dropping the connection mid-stream cancels the sweep: the job
        stops burning CPU, asserted via the progress stream going quiet."""

        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine) as service:
                host, port = service.address
                client = await ServiceClient(host, port).connect()
                ticks = []
                submit = asyncio.create_task(
                    client.submit("slow", {"n": 200}, on_progress=lambda d, t, l: ticks.append(d))
                )
                while len(ticks) < 2:
                    await asyncio.sleep(0.005)
                flight = next(iter(service._flights.values()))
                # abrupt disconnect: no cancel op, just drop the socket
                await client.aclose()
                with contextlib.suppress(ConnectionError, ServiceError, asyncio.CancelledError):
                    await submit
                # wait for the sweep thread to hit the cancel check and die
                await asyncio.gather(flight.task, return_exceptions=True)
                executed_at_cancel = len(_EXECUTED)
                await asyncio.sleep(0.3)
                return executed_at_cancel, len(_EXECUTED), service.jobs_cancelled

        at_cancel, later, cancelled_count = run(scenario())
        assert later == at_cancel, "disconnected client's sweep kept burning CPU"
        assert later < 200
        assert cancelled_count == 1

    def test_single_flight_survives_until_last_subscriber_cancels(
        self, toy_workloads, tmp_path
    ):
        """Two clients share one flight; one cancelling leaves the other's
        sweep running to a full result.  Only the last cancel aborts."""

        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine) as service:
                host, port = service.address
                first = await ServiceClient(host, port).connect()
                second = await ServiceClient(host, port).connect()
                params = {"n": 40}
                task_a = asyncio.create_task(first.submit("slow", params))
                task_b = asyncio.create_task(second.submit("slow", params))
                while not any(f.subscribers == 2 for f in service._flights.values()):
                    await asyncio.sleep(0.005)
                await first.cancel()
                with pytest.raises(ServiceCancelledError):
                    await task_a
                result_b = await task_b
                await first.aclose()
                await second.aclose()
                return result_b, service.jobs_cancelled, engine.stats.jobs_executed

        result_b, cancelled_count, executed = run(scenario())
        assert result_b.payload == {"sum": sum(range(40))}
        assert cancelled_count == 0, "flight with a live subscriber must not cancel"
        assert executed == 40

    def test_cancel_unknown_id_is_bad_request(self, toy_workloads, tmp_path):
        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine) as service:
                host, port = service.address
                reader, writer = await asyncio.open_connection(
                    host, port, limit=protocol.MAX_MESSAGE_BYTES
                )
                writer.write(protocol.encode_message(protocol.cancel_request("ghost")))
                await writer.drain()
                reply = await protocol.read_message(reader)
                writer.close()
                with contextlib.suppress(ConnectionError, OSError):
                    await writer.wait_closed()
                return reply

        reply = run(scenario())
        assert reply["event"] == "error"
        assert reply["code"] == "bad-request"
        assert "ghost" in reply["error"]

    def test_stale_error_frame_does_not_poison_next_request(
        self, toy_workloads, tmp_path
    ):
        """A cancel that loses the race with its submit's terminal event
        produces an error frame for an already-settled id; the client's
        next round-trip must skip it instead of raising."""

        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine) as service:
                host, port = service.address
                client = await ServiceClient(host, port).connect()
                # a cancel for an id this client is no longer waiting on
                client._writer.write(
                    protocol.encode_message(protocol.cancel_request("settled-id"))
                )
                await client._writer.drain()
                status = await client.status()  # must skip the stale frame
                alive = await client.ping()
                await client.aclose()
                return status, alive

        status, alive = run(scenario())
        assert status["event"] == "status"
        assert alive is True

    def test_workload_failure_carries_failed_code(self, toy_workloads, tmp_path):
        def _failing(params, engine):
            raise ValueError("deliberate failure")

        register_workload("failing", _failing)
        try:

            async def scenario():
                engine = SweepEngine(cache=ArtifactCache(tmp_path))
                async with running_service(engine) as service:
                    host, port = service.address
                    async with ServiceClient(host, port) as client:
                        try:
                            await client.submit("failing")
                        except ServiceError as error:
                            return type(error), error.code
                return None, None

            exc_type, code = run(scenario())
            assert exc_type is ServiceError
            assert code == "failed"
        finally:
            unregister_workload("failing")


class TestClusterCancellation:
    def test_distributed_cancel_revokes_chunks_and_workers_survive(self):
        """Cancelling a distributed sweep revokes queued + in-flight chunks
        at the coordinator; the worker pool stays usable afterwards."""
        executor = make_executor("distributed", workers=2, chunksize=5)
        engine = SweepEngine(executor)
        try:
            cancel = threading.Event()
            ticks = []

            def on_progress(done, total, label):
                ticks.append(done)
                cancel.set()  # cancel as soon as the first chunk lands

            start = time.monotonic()
            with pytest.raises(SweepCancelled):
                engine.run(
                    SweepSpec("doomed", [Job(fn=_sleep_job, args=(i,)) for i in range(400)]),
                    progress=on_progress,
                    cancel_event=cancel,
                )
            elapsed = time.monotonic() - start
            # 400 jobs x 20 ms would be ~8 s serial; cancellation after the
            # first chunk must abort far sooner.
            assert elapsed < 6.0
            if executor._fallback is None:  # real cluster ran
                stats = executor.coordinator.stats
                assert stats["runs_cancelled"] == 1
                # the pool survives and serves the next sweep bit-exactly
                follow_up = engine.run(
                    [Job(fn=_sleep_job, args=(i,)) for i in range(10)]
                )
                assert follow_up == list(range(10))
        finally:
            executor.close()


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_pipelined_burst_hits_inflight_cap(self, toy_workloads, tmp_path):
        """A burst of pipelined submits on one connection: the cap-plus-one-th
        is answered `busy` even though none has started executing yet."""

        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine, max_inflight=2) as service:
                host, port = service.address
                reader, writer = await asyncio.open_connection(
                    host, port, limit=protocol.MAX_MESSAGE_BYTES
                )
                for index in range(5):
                    writer.write(
                        protocol.encode_message(
                            protocol.submit_request(f"b{index}", "slow", {"n": index + 3})
                        )
                    )
                await writer.drain()
                outcomes = {}
                while len(outcomes) < 3:  # the three rejections come first
                    message = await protocol.read_message(reader)
                    if message.get("event") == "error":
                        outcomes[message["id"]] = message.get("code")
                writer.close()
                with contextlib.suppress(ConnectionError, OSError):
                    await writer.wait_closed()
                return outcomes, service.busy_rejections

        outcomes, rejections = run(scenario())
        assert set(outcomes.values()) == {"busy"}
        assert rejections == 3

    def test_burst_of_clients_rate_limited(self, toy_workloads, tmp_path):
        """Each client in a burst gets `burst` submits, then typed busy
        errors with a retry hint."""

        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine, rate=0.5, burst=1) as service:
                host, port = service.address

                async def hammer():
                    async with ServiceClient(host, port) as client:
                        first = await client.submit("quick", {"value": 1})
                        try:
                            await client.submit("quick", {"value": 2})
                        except ServiceBusyError as error:
                            return first.payload, error
                        return first.payload, None

                results = await asyncio.gather(*(hammer() for _ in range(4)))
                return results, service.busy_rejections

        results, rejections = run(scenario())
        assert rejections == 4
        for payload, error in results:
            assert payload == {"echo": 1}, "the first submit per client succeeds"
            assert isinstance(error, ServiceBusyError)
            assert error.code == "busy"
            assert error.retry_after is not None and error.retry_after > 0

    def test_queued_bytes_cap(self, toy_workloads, tmp_path):
        """Requests that *could* fit later are `busy` (retryable); a single
        request bigger than the whole budget is `bad-request` (terminal),
        so a compliant retry loop can never spin forever."""

        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine, max_queued_bytes=600) as service:
                host, port = service.address
                async with ServiceClient(host, port) as client:
                    # alone over the whole budget: terminal rejection
                    with pytest.raises(ServiceBadRequestError, match="exceeds the per-connection budget"):
                        await client.submit("quick", {"value": "x" * 2048})
                    ok = await client.submit("quick", {"value": "small"})
                # budget-sized requests stacking up: retryable busy
                reader, writer = await asyncio.open_connection(
                    host, port, limit=protocol.MAX_MESSAGE_BYTES
                )
                padding = "y" * 400
                for index in range(2):
                    writer.write(
                        protocol.encode_message(
                            protocol.submit_request(f"q{index}", "slow", {"n": 9, "pad": padding})
                        )
                    )
                await writer.drain()
                busy = None
                while busy is None:
                    message = await protocol.read_message(reader)
                    if message.get("event") == "error":
                        busy = message
                writer.close()
                with contextlib.suppress(ConnectionError, OSError):
                    await writer.wait_closed()
                return ok, busy

        ok, busy = run(scenario())
        assert ok.payload == {"echo": "small"}
        assert busy["code"] == "busy" and "over budget" in busy["error"]

    def test_limits_reported_in_status(self, toy_workloads, tmp_path):
        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(
                engine, max_inflight=3, rate=2.0, burst=5, max_queued_bytes=10_000
            ) as service:
                host, port = service.address
                async with ServiceClient(host, port) as client:
                    return await client.status()

        status = run(scenario())
        assert status["limits"] == {
            "max_inflight": 3,
            "max_queued_bytes": 10_000,
            "rate": 2.0,
            "burst": 5,
        }
        assert status["busy_rejections"] == 0
        assert status["jobs_cancelled"] == 0


# ----------------------------------------------------------------------
# Journal recovery: SIGKILL a serve subprocess mid-sweep, resume, compare
# ----------------------------------------------------------------------
def _spawn_serve(cache_dir, *extra_args):
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--cache-dir",
            str(cache_dir),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )


def _read_banner_port(process) -> int:
    banner = process.stdout.readline()
    match = re.search(r":(\d+) ", banner)
    assert match, f"no port in serve banner: {banner!r}"
    return int(match.group(1))


class TestJournalRecovery:
    PARAMS = {"samples": 2000, "seed": 11, "shards": 8}

    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        """Kill `serve` mid-sweep; `--resume` replays the journal and the
        resubmitted request returns bit-identical results, served from the
        artifacts the replay produced."""
        cache_dir = tmp_path / "cache"

        # --- baseline: the uninterrupted run, fresh cache, in-process ----
        from repro.service.workloads import get_workload

        baseline_engine = SweepEngine(cache=ArtifactCache(tmp_path / "baseline-cache"))
        baseline = get_workload("montecarlo")(dict(self.PARAMS), baseline_engine)

        # --- cold run, killed mid-sweep ----------------------------------
        process = _spawn_serve(cache_dir)
        try:
            port = _read_banner_port(process)

            async def submit_and_kill():
                client = ServiceClient("127.0.0.1", port)
                await client.connect(timeout=TIMEOUT)
                ticks = []
                submit = asyncio.create_task(
                    client.submit(
                        "montecarlo",
                        dict(self.PARAMS),
                        on_progress=lambda d, t, l: ticks.append(d),
                    )
                )
                while not ticks:  # first shard landed; 7 more to go
                    await asyncio.sleep(0.005)
                os.kill(process.pid, signal.SIGKILL)
                with contextlib.suppress(
                    ConnectionError, OSError, ServiceError, asyncio.IncompleteReadError
                ):
                    await submit
                await client.aclose()

            run(submit_and_kill())
        finally:
            process.kill()
            process.wait(timeout=15)

        journal = JobJournal(default_journal_path(cache_dir))
        pending = journal.pending()
        assert len(pending) == 1, "the killed sweep must be journal-pending"
        assert pending[0].workload == "montecarlo"
        assert pending[0].params == self.PARAMS

        # --- restart with --resume ---------------------------------------
        process = _spawn_serve(cache_dir, "--resume")
        try:
            port = _read_banner_port(process)
            resumed_line = ""
            for line in process.stdout:
                if "resumed" in line:
                    resumed_line = line
                    break
            assert "resumed 1 interrupted job(s)" in resumed_line

            async def await_replay_then_resubmit():
                client = ServiceClient("127.0.0.1", port)
                await client.connect(timeout=TIMEOUT)
                # wait until the replayed flight completed
                while True:
                    status = await client.status()
                    if status["in_flight"] == 0 and status["journal"]["pending"] == 0:
                        break
                    await asyncio.sleep(0.05)
                executed_by_replay = status["engine_stats"]["jobs_executed"]
                result = await client.submit("montecarlo", dict(self.PARAMS))
                after = await client.status()
                await client.aclose()
                return status, result, after, executed_by_replay

            status, result, after, executed_by_replay = asyncio.run(
                asyncio.wait_for(await_replay_then_resubmit(), TIMEOUT * 4)
            )
        finally:
            process.terminate()
            process.wait(timeout=15)

        assert status["journal"]["resumed"] == 1
        assert executed_by_replay > 0, "the replay must have re-run the sweep"
        # the resubmit is served from the replay's artifacts ...
        assert after["engine_stats"]["jobs_executed"] == executed_by_replay
        assert after["cache_stats"]["hits"] >= self.PARAMS["shards"]
        # ... and the payload is bit-identical to the uninterrupted run
        # (floats survive JSON exactly: dumps uses shortest round-trip repr)
        assert result.payload["sigma_v_blb"] == baseline["sigma_v_blb"]
        assert result.payload == baseline

    def test_cancel_then_resubmit_keeps_journal_lifecycle_pending(
        self, toy_workloads, tmp_path
    ):
        """A cancelled flight superseded by a resubmit of the same request
        must not erase the live flight's pending journal entry — a crash
        while the resubmit runs must still be replayable."""

        async def scenario():
            journal = JobJournal(tmp_path / "journal.ndjson")
            engine = SweepEngine(cache=ArtifactCache(tmp_path / "cache"))
            async with running_service(engine, journal=journal) as service:
                host, port = service.address
                first = await ServiceClient(host, port).connect()
                ticks = []
                params = {"n": 60}
                submit = asyncio.create_task(
                    first.submit("slow", params, on_progress=lambda d, t, l: ticks.append(d))
                )
                while not ticks:
                    await asyncio.sleep(0.005)
                old_flight = next(iter(service._flights.values()))
                await first.cancel()
                with pytest.raises(ServiceCancelledError):
                    await submit
                # resubmit the identical request before the old sweep thread
                # has died; then let the old flight's done-callback run
                second = await ServiceClient(host, port).connect()
                resubmit = asyncio.create_task(second.submit("slow", params))
                while old_flight.key not in service._flights:
                    await asyncio.sleep(0.005)
                await asyncio.gather(old_flight.task, return_exceptions=True)
                await asyncio.sleep(0)  # let the done-callback fire
                pending_mid = old_flight.key in service._journal_pending
                result = await resubmit
                await first.aclose()
                await second.aclose()
            # service.stop() flushed the journal writer thread
            return pending_mid, result, journal

        pending_mid, result, journal = run(scenario())
        assert pending_mid, "superseded flight's terminal record erased the live lifecycle"
        assert result.payload == {"sum": sum(range(60))}
        assert journal.pending() == [], "completed lifecycle must clear the journal"
        kinds = [record["record"] for record in journal.records()]
        assert kinds.count("submitted") == 2
        assert kinds.count("completed") == 1 and "cancelled" not in kinds

    def test_resume_with_clean_journal_resumes_nothing(self, tmp_path):
        process = _spawn_serve(tmp_path / "cache", "--resume")
        try:
            _read_banner_port(process)
            for line in process.stdout:
                if "resumed" in line:
                    assert "resumed 0 interrupted job(s)" in line
                    break
        finally:
            process.terminate()
            process.wait(timeout=15)
