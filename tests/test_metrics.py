"""Unit tests for the shared metric helpers."""

import numpy as np
import pytest

from repro.core.metrics import (
    error_in_lsb,
    figure_of_merit,
    lsb_voltage,
    max_absolute_error,
    mean_absolute_error,
    rms_error,
    signal_to_noise_ratio_db,
    speedup_ratio,
    top_k_accuracy,
    voltage_to_lsb,
)


class TestErrorMetrics:
    def test_rms_error(self):
        assert rms_error([1.0, 2.0], [1.0, 4.0]) == pytest.approx(np.sqrt(2.0))

    def test_mean_and_max_absolute_error(self):
        assert mean_absolute_error([1.0, 3.0], [2.0, 1.0]) == pytest.approx(1.5)
        assert max_absolute_error([1.0, 3.0], [2.0, 1.0]) == pytest.approx(2.0)

    def test_error_in_lsb(self):
        assert np.allclose(error_in_lsb([3, 5], [4, 5]), [1.0, 0.0])


class TestConverterMetrics:
    def test_lsb_voltage(self):
        assert lsb_voltage(0.225, 225) == pytest.approx(1e-3)
        with pytest.raises(ValueError):
            lsb_voltage(-1.0, 10)
        with pytest.raises(ValueError):
            lsb_voltage(1.0, 0)

    def test_voltage_to_lsb(self):
        assert float(voltage_to_lsb(5e-3, 1e-3)) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            voltage_to_lsb(1.0, 0.0)

    def test_snr(self):
        assert signal_to_noise_ratio_db(1.0, 0.1) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            signal_to_noise_ratio_db(0.0, 1.0)


class TestPerformanceMetrics:
    def test_speedup_ratio(self):
        assert speedup_ratio(10.0, 0.1) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            speedup_ratio(0.0, 1.0)
        with pytest.raises(ValueError):
            speedup_ratio(1.0, 0.0)

    def test_figure_of_merit_matches_eq9(self):
        assert figure_of_merit(4.78, 44e-15) == pytest.approx(1.0 / (4.78 * 44e-15))
        with pytest.raises(ValueError):
            figure_of_merit(0.0, 1.0)


class TestTopKAccuracy:
    def test_top1_and_topk(self):
        scores = np.array(
            [
                [0.1, 0.7, 0.2],
                [0.5, 0.3, 0.2],
                [0.2, 0.3, 0.5],
            ]
        )
        labels = np.array([1, 2, 2])
        assert top_k_accuracy(scores, labels, k=1) == pytest.approx(2.0 / 3.0)
        assert top_k_accuracy(scores, labels, k=2) == pytest.approx(2.0 / 3.0)
        assert top_k_accuracy(scores, labels, k=3) == pytest.approx(1.0)

    def test_validation(self):
        scores = np.zeros((2, 3))
        with pytest.raises(ValueError):
            top_k_accuracy(scores, np.array([0]), k=1)
        with pytest.raises(ValueError):
            top_k_accuracy(scores, np.array([0, 1]), k=5)
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros(3), np.array([0, 1, 2]), k=1)
