"""Tests for the sweep-execution engine and its three executors.

The load-bearing guarantees:

* serial, process-pool parallel and vectorised batch executors produce
  bit-identical, order-preserving results on the same jobs;
* the design-space exploration and Monte-Carlo PVT flows are
  schedule-independent (parallel == serial, element for element);
* cacheable jobs are served from the artifact cache on re-runs;
* the unified CLI drives a full DSE run end-to-end through the engine.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.characterization import CharacterizationPlan, characterize
from repro.core.dse import DesignSpace, explore_design_space
from repro.core.pvt import monte_carlo_error_distribution
from repro.runtime import (
    Artifact,
    ArtifactCache,
    BatchExecutor,
    Job,
    ParallelExecutor,
    SerialExecutor,
    SweepEngine,
    SweepSpec,
    job_key,
    make_executor,
)
from repro.runtime.cli import main as cli_main


def _square(value: int) -> int:
    """Toy job body (module-level so the process pool can pickle it)."""
    return value * value


def _toy_jobs(count: int = 10):
    return [Job(fn=_square, args=(i,), name=f"square[{i}]") for i in range(count)]


def _square_batch(jobs):
    """Vectorised toy batch evaluator."""
    values = np.asarray([job.args[0] for job in jobs])
    return list((values * values).tolist())


class TestExecutors:
    def test_serial_preserves_order(self):
        results = SerialExecutor().execute(_toy_jobs())
        assert results == [i * i for i in range(10)]

    @pytest.mark.parametrize("chunksize", [None, 1, 3, 100])
    def test_parallel_matches_serial(self, chunksize):
        jobs = _toy_jobs(17)
        expected = SerialExecutor().execute(jobs)
        parallel = ParallelExecutor(max_workers=2, chunksize=chunksize)
        assert parallel.execute(jobs) == expected

    def test_parallel_single_job_falls_back_to_serial(self):
        assert ParallelExecutor(max_workers=4).execute(_toy_jobs(1)) == [0]

    def test_parallel_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(chunksize=0)

    def test_batch_without_batch_fn(self):
        assert BatchExecutor(batch_size=4).execute(_toy_jobs(10)) == [
            i * i for i in range(10)
        ]

    def test_batch_with_vectorised_batch_fn(self):
        results = BatchExecutor(batch_size=3).execute(
            _toy_jobs(10), batch_fn=_square_batch
        )
        assert results == [i * i for i in range(10)]

    def test_batch_fn_result_count_is_validated(self):
        with pytest.raises(RuntimeError):
            BatchExecutor(batch_size=4).execute(_toy_jobs(8), batch_fn=lambda jobs: [1])

    def test_batch_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchExecutor(batch_size=0)

    def test_progress_callback_reaches_total(self):
        seen = []
        SerialExecutor().execute(_toy_jobs(5), progress=lambda d, t, n: seen.append((d, t)))
        assert seen == [(i + 1, 5) for i in range(5)]
        seen = []
        ParallelExecutor(max_workers=2, chunksize=2).execute(
            _toy_jobs(5), progress=lambda d, t, n: seen.append((d, t))
        )
        assert seen[-1] == (5, 5)

    def test_make_executor(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert make_executor("parallel", max_workers=3).max_workers == 3
        assert make_executor("batch", batch_size=5).batch_size == 5
        with pytest.raises(ValueError):
            make_executor("quantum")


class TestFallbackKeepsBatchFn:
    """Regression: every in-process degradation used to silently drop
    ``batch_fn`` (falling back to a plain serial loop); a sweep that
    brought its vectorised inner loop must keep it on every fallback
    path."""

    @staticmethod
    def _tracking_batch_fn(calls):
        def batch_fn(jobs):
            calls.append(len(jobs))
            return [job.args[0] ** 2 for job in jobs]

        return batch_fn

    def test_parallel_single_job_fallback(self):
        calls = []
        results = ParallelExecutor(max_workers=4).execute(
            _toy_jobs(1), batch_fn=self._tracking_batch_fn(calls)
        )
        assert results == [0]
        assert calls == [1]

    def test_parallel_single_worker_fallback(self):
        calls = []
        results = ParallelExecutor(max_workers=1).execute(
            _toy_jobs(7), batch_fn=self._tracking_batch_fn(calls)
        )
        assert results == [i * i for i in range(7)]
        assert sum(calls) == 7

    def test_parallel_pool_failure_fallback(self, monkeypatch):
        import repro.runtime.executors as executors_module

        def broken_pool(*args, **kwargs):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(executors_module, "ProcessPoolExecutor", broken_pool)
        calls = []
        results = ParallelExecutor(max_workers=4).execute(
            _toy_jobs(9), batch_fn=self._tracking_batch_fn(calls)
        )
        assert results == [i * i for i in range(9)]
        assert sum(calls) == 9

    def test_distributed_single_job_fallback(self):
        from repro.cluster import DistributedExecutor

        calls = []
        executor = DistributedExecutor(workers=1)
        results = executor.execute(_toy_jobs(1), batch_fn=self._tracking_batch_fn(calls))
        assert results == [0]
        assert calls == [1]
        assert not executor._started  # never paid a cluster spin-up for one job


class TestSweepEngine:
    def test_run_preserves_submission_order(self):
        engine = SweepEngine(ParallelExecutor(max_workers=2, chunksize=1))
        results = engine.run(SweepSpec("toy", _toy_jobs(8)))
        assert results == [i * i for i in range(8)]

    def test_map_convenience(self):
        engine = SweepEngine()
        assert engine.map(_square, [(i,) for i in range(4)]) == [0, 1, 4, 9]

    def test_run_one(self):
        assert SweepEngine().run_one(Job(fn=_square, args=(7,))) == 49

    def test_stats_accumulate(self):
        engine = SweepEngine()
        engine.run(SweepSpec("toy", _toy_jobs(3)))
        engine.run(SweepSpec("toy", _toy_jobs(2)))
        assert engine.stats.sweeps == 2
        assert engine.stats.jobs_submitted == 5
        assert engine.stats.jobs_executed == 5
        assert "5 jobs submitted" in engine.describe()

    def test_cacheable_jobs_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        executions = []

        def producer(value):
            executions.append(value)
            return np.arange(value, dtype=float)

        def build_job(value):
            return Job(
                fn=producer,
                args=(value,),
                name=f"produce[{value}]",
                key=job_key("toy-producer", value),
                encode=lambda result: Artifact(arrays={"data": result}),
                decode=lambda artifact: artifact.arrays["data"],
            )

        engine = SweepEngine(cache=cache)
        first = engine.run(SweepSpec("toy", [build_job(5), build_job(6)]))
        second = engine.run(SweepSpec("toy", [build_job(5), build_job(6)]))
        assert executions == [5, 6], "second run must be served from the cache"
        assert engine.stats.cache_hits == 2
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_uncacheable_jobs_always_execute(self, tmp_path):
        engine = SweepEngine(cache=ArtifactCache(tmp_path))
        engine.run(SweepSpec("toy", _toy_jobs(3)))
        engine.run(SweepSpec("toy", _toy_jobs(3)))
        assert engine.stats.cache_hits == 0
        assert engine.stats.jobs_executed == 6


class TestScheduleIndependence:
    """Parallel and batch execution must be bit-identical to serial."""

    def test_dse_parallel_and_batch_match_serial(self, quick_suite):
        space = DesignSpace.quick()
        serial = explore_design_space(quick_suite, space)
        parallel = explore_design_space(
            quick_suite,
            space,
            engine=SweepEngine(ParallelExecutor(max_workers=2, chunksize=2)),
        )
        batched = explore_design_space(
            quick_suite, space, engine=SweepEngine(BatchExecutor(batch_size=3))
        )
        assert len(serial.points) == space.corner_count
        for reference, candidate in zip(serial.points, parallel.points):
            np.testing.assert_array_equal(
                reference.analysis.results, candidate.analysis.results
            )
            assert reference.analysis.energy_per_multiplication == (
                candidate.analysis.energy_per_multiplication
            )
            assert reference.config == candidate.config
        for reference, candidate in zip(serial.points, batched.points):
            np.testing.assert_array_equal(
                reference.analysis.results, candidate.analysis.results
            )

    def test_monte_carlo_sigma_is_schedule_independent(self, quick_suite, fom_config):
        """SeedSequence.spawn-derived seeds make serial and parallel runs
        produce bit-identical sigma estimates (satellite requirement)."""
        serial = monte_carlo_error_distribution(
            quick_suite, fom_config, samples=16, seed=42
        )
        parallel = monte_carlo_error_distribution(
            quick_suite,
            fom_config,
            samples=16,
            seed=42,
            engine=SweepEngine(ParallelExecutor(max_workers=2, chunksize=3)),
        )
        np.testing.assert_array_equal(serial, parallel)
        assert float(np.std(serial)) == float(np.std(parallel))
        assert float(np.std(serial)) > 0.0

    def test_characterization_parallel_matches_serial(self, technology):
        plan = CharacterizationPlan.quick()
        serial = characterize(technology, plan)
        parallel = characterize(
            technology,
            plan,
            engine=SweepEngine(ParallelExecutor(max_workers=2, chunksize=1)),
        )
        np.testing.assert_array_equal(
            serial.base.bitline_voltage, parallel.base.bitline_voltage
        )
        np.testing.assert_array_equal(
            serial.supply.bitline_voltage, parallel.supply.bitline_voltage
        )
        np.testing.assert_array_equal(serial.mismatch.sigma, parallel.mismatch.sigma)
        np.testing.assert_array_equal(
            serial.discharge_energy.energy, parallel.discharge_energy.energy
        )


class TestCli:
    def test_run_dse_fast_end_to_end(self, tmp_path, capsys):
        json_path = tmp_path / "dse.json"
        exit_code = cli_main(
            [
                "run",
                "dse",
                "--fast",
                "--quiet",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json",
                str(json_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table I reproduction" in output
        assert "SweepEngine" in output
        payload = json.loads(json_path.read_text())
        assert payload["corner_count"] == DesignSpace.quick().corner_count
        assert {row["corner"] for row in payload["selected"]} == {
            "fom",
            "power",
            "variation",
        }

    def test_run_dse_fast_warm_cache_executes_nothing(self, tmp_path, capsys):
        args = ["run", "dse", "--fast", "--quiet", "--cache-dir", str(tmp_path / "cache")]
        assert cli_main(args) == 0
        capsys.readouterr()
        assert cli_main(args) == 0
        output = capsys.readouterr().out
        assert " 0 executed" in output

    def test_cache_info_and_clear(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert cli_main(["run", "dse", "--fast", "--quiet", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert cli_main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
        assert "artifacts" in capsys.readouterr().out
        assert cli_main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed" in capsys.readouterr().out
        assert len(ArtifactCache(cache_dir)) == 0

    def test_executor_cli_choices(self, tmp_path):
        for executor in ("serial", "parallel", "batch"):
            assert (
                cli_main(
                    [
                        "run",
                        "characterize",
                        "--fast",
                        "--quiet",
                        "--executor",
                        executor,
                        "--cache-dir",
                        str(tmp_path / f"cache-{executor}"),
                    ]
                )
                == 0
            )


class TestMakeExecutorValidation:
    """CLI flags must never be silently ignored or coerced."""

    def test_irrelevant_options_rejected(self):
        with pytest.raises(ValueError, match="serial"):
            make_executor("serial", max_workers=8)
        with pytest.raises(ValueError, match="batch"):
            make_executor("batch", max_workers=8)
        with pytest.raises(ValueError, match="parallel"):
            make_executor("parallel", batch_size=4)
        with pytest.raises(ValueError, match="typo_option"):
            make_executor("parallel", typo_option=1)

    def test_none_means_unset_and_is_always_accepted(self):
        assert isinstance(
            make_executor("serial", max_workers=None, chunksize=None, batch_size=None),
            SerialExecutor,
        )
        assert make_executor("batch", batch_size=None).batch_size == 8

    def test_invalid_values_propagate_instead_of_coercing(self):
        with pytest.raises(ValueError, match="batch_size"):
            make_executor("batch", batch_size=0)
        with pytest.raises(ValueError, match="max_workers"):
            make_executor("parallel", max_workers=0)
        with pytest.raises(ValueError, match="chunksize"):
            make_executor("parallel", chunksize=0)


class TestEngineProgressTotals:
    """Progress is reported against the true sweep size, cache hits included."""

    @staticmethod
    def _cacheable_job(value):
        return Job(
            fn=_square,
            args=(value,),
            name=f"square[{value}]",
            key=job_key("progress-totals", value),
            encode=lambda result: Artifact(arrays={"x": np.asarray([result])}),
            decode=lambda artifact: int(artifact.arrays["x"][0]),
        )

    def test_fully_cached_sweep_still_reports_progress(self, tmp_path):
        engine = SweepEngine(cache=ArtifactCache(tmp_path))
        jobs = [self._cacheable_job(i) for i in range(4)]
        engine.run(SweepSpec("toy", jobs))

        seen = []
        engine.run(
            SweepSpec("toy", [self._cacheable_job(i) for i in range(4)]),
            progress=lambda d, t, label: seen.append((d, t, label)),
        )
        assert [(d, t) for d, t, _ in seen] == [(i + 1, 4) for i in range(4)]
        assert all("(cached)" in label for _, _, label in seen)

    def test_mixed_sweep_counts_hits_and_executions_against_true_total(self, tmp_path):
        engine = SweepEngine(cache=ArtifactCache(tmp_path))
        engine.run(SweepSpec("warmup", [self._cacheable_job(0), self._cacheable_job(2)]))

        seen = []
        engine.run(
            SweepSpec("mixed", [self._cacheable_job(i) for i in range(5)]),
            progress=lambda d, t, label: seen.append((d, t)),
        )
        assert all(total == 5 for _, total in seen)
        dones = [done for done, _ in seen]
        assert dones == sorted(dones), "progress must be monotone"
        assert dones[-1] == 5
        assert len(seen) == 5, "every job (hit or executed) reports one tick"

    def test_engine_default_progress_callback_is_used(self, tmp_path):
        seen = []
        engine = SweepEngine(progress=lambda d, t, label: seen.append((d, t)))
        engine.run(SweepSpec("toy", _toy_jobs(3)))
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestParseSize:
    def test_suffixes(self):
        from repro.runtime.cli import parse_size

        assert parse_size("1234") == 1234
        assert parse_size("500M") == 500_000_000
        assert parse_size("1.5k") == 1500
        assert parse_size("2GB") == 2_000_000_000

    def test_invalid_inputs_raise_value_error(self):
        from repro.runtime.cli import parse_size

        for bad in ("", "x", "12Q", "inf", "1e999", "nan", "-1"):
            with pytest.raises(ValueError):
                parse_size(bad)
