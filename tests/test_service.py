"""Tests for the asyncio sweep service (:mod:`repro.service`).

Covers the tentpole guarantees:

* many concurrent clients are served by one engine + one artifact cache;
* identical in-flight requests single-flight onto one execution (engine
  stats show no duplicate work) while every client still receives progress
  events and the result;
* repeat (non-overlapping) requests are served by the artifact cache;
* protocol violations and workload failures surface as error events, never
  as wedged connections or server crashes;
* shutdown is clean: in-flight sweeps drain, clients see end-of-stream.

Every async scenario runs under ``asyncio.wait_for`` so a hung server fails
the test quickly instead of stalling the suite (the CI job adds an outer
``timeout`` guard on top).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import re
import subprocess
import sys
import threading

import numpy as np
import pytest

import repro
from repro.runtime import Artifact, ArtifactCache, Job, SweepEngine, SweepSpec, job_key
from repro.service import (
    ProtocolError,
    ServiceClient,
    ServiceError,
    SweepService,
    register_workload,
    unregister_workload,
)
from repro.service import progress as progress_mod
from repro.service import protocol

TIMEOUT = 30.0


def run(coro):
    """Run a coroutine with a hard timeout so nothing can hang the suite."""
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


@contextlib.asynccontextmanager
async def running_service(engine=None, **kwargs):
    service = SweepService(engine=engine, **kwargs)
    await service.start()
    try:
        yield service
    finally:
        await service.stop()


# ----------------------------------------------------------------------
# Toy workloads
# ----------------------------------------------------------------------
_EXECUTIONS = []
_GATE = threading.Event()


def _toy_job(value: int) -> int:
    return value * value


def _toy_workload(params, engine):
    """Sum of squares through the engine; records each execution."""
    _EXECUTIONS.append(dict(params))
    count = int(params.get("n", 4))
    jobs = [Job(fn=_toy_job, args=(i,), name=f"sq[{i}]") for i in range(count)]
    return {"sum": sum(engine.run(SweepSpec("toy", jobs)))}


def _gated_workload(params, engine):
    """Like _toy_workload but blocks until the test opens the gate."""
    _EXECUTIONS.append(dict(params))
    if not _GATE.wait(timeout=TIMEOUT):
        raise RuntimeError("test gate never opened")
    count = int(params.get("n", 4))
    jobs = [Job(fn=_toy_job, args=(i,), name=f"sq[{i}]") for i in range(count)]
    return {"sum": sum(engine.run(SweepSpec("toy", jobs)))}


def _cacheable_workload(params, engine):
    """Engine-cached jobs, so repeat requests skip execution entirely."""
    _EXECUTIONS.append(dict(params))
    count = int(params.get("n", 3))

    def build(value):
        return Job(
            fn=_toy_job,
            args=(value,),
            name=f"sq[{value}]",
            key=job_key("service-test-square", value),
            encode=lambda result: Artifact(arrays={"x": np.asarray([result])}),
            decode=lambda artifact: int(artifact.arrays["x"][0]),
        )

    return {"sum": sum(engine.run(SweepSpec("toy", [build(i) for i in range(count)])))}


def _failing_workload(params, engine):
    raise ValueError("deliberate workload failure")


@pytest.fixture
def toy_workloads():
    _EXECUTIONS.clear()
    _GATE.clear()
    register_workload("toy", _toy_workload)
    register_workload("toy-gated", _gated_workload)
    register_workload("toy-cached", _cacheable_workload)
    register_workload("toy-failing", _failing_workload)
    try:
        yield _EXECUTIONS
    finally:
        _GATE.set()  # never leave a worker thread blocked
        for name in ("toy", "toy-gated", "toy-cached", "toy-failing"):
            unregister_workload(name)


# ----------------------------------------------------------------------
# Protocol framing
# ----------------------------------------------------------------------
class TestProtocol:
    def test_round_trip(self):
        message = protocol.submit_request("req-1", "dse", {"fast": True})
        assert protocol.decode_message(protocol.encode_message(message)) == message

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_message(b"[1, 2, 3]\n")
        with pytest.raises(ProtocolError):
            protocol.decode_message(b"not json at all\n")

    def test_oversized_message_rejected(self):
        huge = {"op": "submit", "blob": "x" * protocol.MAX_MESSAGE_BYTES}
        with pytest.raises(ProtocolError):
            protocol.encode_message(huge)

    def test_event_constructors_carry_request_id(self):
        assert protocol.accepted_event("r", "k", True)["id"] == "r"
        assert protocol.progress_event("r", 1, 2, "x")["total"] == 2
        assert protocol.result_event("r", {"a": 1}, 0.5)["payload"] == {"a": 1}
        assert protocol.error_event(None, "boom")["id"] is None


class TestProgressBroadcaster:
    def test_fan_out_and_close(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            broadcaster = progress_mod.ProgressBroadcaster(loop)
            first = broadcaster.subscribe()
            second = broadcaster.subscribe()
            await loop.run_in_executor(None, broadcaster.callback, 1, 2, "tick")
            await loop.run_in_executor(None, broadcaster.close)
            return await asyncio.gather(
                progress_mod.drain(first), progress_mod.drain(second)
            )

        ticks_a, ticks_b = run(scenario())
        assert ticks_a == ticks_b == [{"done": 1, "total": 2, "label": "tick"}]

    def test_subscribe_after_close_terminates_immediately(self):
        async def scenario():
            broadcaster = progress_mod.ProgressBroadcaster(asyncio.get_running_loop())
            broadcaster.close()
            await asyncio.sleep(0)  # let the scheduled close run
            return await progress_mod.drain(broadcaster.subscribe())

        assert run(scenario()) == []


# ----------------------------------------------------------------------
# Service behaviour
# ----------------------------------------------------------------------
class TestSweepService:
    def test_ping_and_status(self, toy_workloads, tmp_path):
        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine) as service:
                host, port = service.address
                async with ServiceClient(host, port) as client:
                    alive = await client.ping()
                    status = await client.status()
            return alive, status

        alive, status = run(scenario())
        assert alive is True
        assert status["version"] == repro.__version__
        assert status["protocol"] == protocol.PROTOCOL_VERSION
        assert {"toy", "toy-cached"} <= set(status["workloads"])
        assert status["in_flight"] == 0
        assert status["engine_stats"]["jobs_executed"] == 0

    def test_submit_streams_progress_and_result(self, toy_workloads, tmp_path):
        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            ticks = []
            async with running_service(engine) as service:
                host, port = service.address
                async with ServiceClient(host, port) as client:
                    result = await client.submit(
                        "toy", {"n": 5}, on_progress=lambda d, t, label: ticks.append((d, t))
                    )
            return result, ticks

        result, ticks = run(scenario())
        assert result.payload == {"sum": sum(i * i for i in range(5))}
        assert result.deduplicated is False
        assert result.progress_events == len(ticks) == 5
        assert ticks[-1] == (5, 5)
        assert [done for done, _ in ticks] == sorted(done for done, _ in ticks)
        assert all(total == 5 for _, total in ticks)

    def test_single_flight_dedup_across_concurrent_clients(self, toy_workloads, tmp_path):
        """Two clients, identical request: one execution, results for both."""

        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            progress_counts = {"a": 0, "b": 0}
            async with running_service(engine) as service:
                host, port = service.address

                async def submit(tag):
                    async with ServiceClient(host, port) as client:
                        def on_progress(done, total, label, tag=tag):
                            progress_counts[tag] += 1

                        return await client.submit(
                            "toy-gated", {"n": 6}, on_progress=on_progress
                        )

                task_a = asyncio.create_task(submit("a"))
                task_b = asyncio.create_task(submit("b"))
                # Wait until both requests are attached to the same flight,
                # then open the gate: the sweep provably ran while both were
                # subscribed.
                while True:
                    flights = list(service._flights.values())
                    if flights and flights[0].subscribers == 2:
                        break
                    await asyncio.sleep(0.01)
                _GATE.set()
                result_a, result_b = await asyncio.gather(task_a, task_b)
            return result_a, result_b, progress_counts, engine.stats

        result_a, result_b, progress_counts, stats = run(scenario())
        assert len(_EXECUTIONS) == 1, "identical concurrent requests must run once"
        assert sorted([result_a.deduplicated, result_b.deduplicated]) == [False, True]
        assert result_a.payload == result_b.payload == {"sum": sum(i * i for i in range(6))}
        assert result_a.key == result_b.key
        assert progress_counts["a"] == progress_counts["b"] == 6
        assert stats.sweeps == 1 and stats.jobs_executed == 6

    def test_distinct_params_do_not_deduplicate(self, toy_workloads, tmp_path):
        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine) as service:
                host, port = service.address
                async with ServiceClient(host, port) as first:
                    async with ServiceClient(host, port) as second:
                        return await asyncio.gather(
                            first.submit("toy", {"n": 3}),
                            second.submit("toy", {"n": 4}),
                        )

        result_a, result_b = run(scenario())
        assert len(_EXECUTIONS) == 2
        assert result_a.key != result_b.key
        assert result_a.deduplicated is False and result_b.deduplicated is False

    def test_repeat_request_served_from_artifact_cache(self, toy_workloads, tmp_path):
        """Non-overlapping identical requests: second re-runs the workload
        but every job is an artifact-cache hit (no solver work)."""

        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine) as service:
                host, port = service.address
                async with ServiceClient(host, port) as client:
                    cold = await client.submit("toy-cached", {"n": 3})
                    warm = await client.submit("toy-cached", {"n": 3})
            return cold, warm, engine.stats

        cold, warm, stats = run(scenario())
        assert cold.payload == warm.payload
        assert len(_EXECUTIONS) == 2, "the workload itself re-runs"
        assert stats.jobs_executed == 3, "but no job executes twice"
        assert stats.cache_hits == 3

    def test_unknown_workload_errors_and_connection_survives(self, toy_workloads, tmp_path):
        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine) as service:
                host, port = service.address
                async with ServiceClient(host, port) as client:
                    try:
                        await client.submit("no-such-workload")
                    except ServiceError as error:
                        message = str(error)
                    else:
                        message = "<no error>"
                    alive = await client.ping()
            return message, alive

        message, alive = run(scenario())
        assert "no-such-workload" in message
        assert alive is True

    def test_workload_failure_reports_error_event(self, toy_workloads, tmp_path):
        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine) as service:
                host, port = service.address
                async with ServiceClient(host, port) as client:
                    with pytest.raises(ServiceError, match="deliberate workload failure"):
                        await client.submit("toy-failing")
                    # the failed flight is gone and the service still works
                    follow_up = await client.submit("toy", {"n": 2})
                    in_flight = len(service._flights)
            return follow_up, in_flight

        follow_up, in_flight = run(scenario())
        assert follow_up.payload == {"sum": 1}
        assert in_flight == 0

    def test_malformed_requests_get_error_events(self, tmp_path):
        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine) as service:
                host, port = service.address
                reader, writer = await asyncio.open_connection(
                    host, port, limit=protocol.MAX_MESSAGE_BYTES
                )
                # unknown op -> error event, connection stays up
                writer.write(protocol.encode_message({"op": "frobnicate", "id": "r1"}))
                await writer.drain()
                unknown_op = await protocol.read_message(reader)
                # submit without workload -> error event
                writer.write(protocol.encode_message({"op": "submit", "id": "r2"}))
                await writer.drain()
                no_workload = await protocol.read_message(reader)
                # non-JSON line -> protocol error event, then close
                writer.write(b"this is not json\n")
                await writer.drain()
                bad_frame = await protocol.read_message(reader)
                eof = await reader.read()
                writer.close()
                with contextlib.suppress(ConnectionError, OSError):
                    await writer.wait_closed()
            return unknown_op, no_workload, bad_frame, eof

        unknown_op, no_workload, bad_frame, eof = run(scenario())
        assert unknown_op["event"] == "error" and "frobnicate" in unknown_op["error"]
        assert no_workload["event"] == "error" and no_workload["id"] == "r2"
        assert bad_frame["event"] == "error" and bad_frame["id"] is None
        assert eof == b"", "broken framing must close the connection"

    def test_clean_shutdown_drains_in_flight_sweeps(self, toy_workloads, tmp_path):
        """stop() lets a running sweep finish and its client gets the result."""

        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            service = SweepService(engine)
            host, port = await service.start()
            client = await ServiceClient(host, port).connect()
            submit = asyncio.create_task(client.submit("toy-gated", {"n": 2}))
            while not service._flights:
                await asyncio.sleep(0.01)
            _GATE.set()
            await service.stop()
            result = await submit
            # afterwards the endpoint is gone
            with pytest.raises(ConnectionError):
                await asyncio.open_connection(host, port)
            await client.aclose()
            return result

        result = run(scenario())
        assert result.payload == {"sum": 1}

    def test_client_requires_connection_and_serialises_requests(self):
        client = ServiceClient("127.0.0.1", 1)
        with pytest.raises(RuntimeError, match="not connected"):
            run(client.submit("toy"))


class TestConnectRetry:
    """`ServiceClient.connect(timeout=...)` rides out a server still binding."""

    def test_connect_retries_until_late_server_binds(self, toy_workloads, tmp_path):
        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            # Reserve a port, then bind the real service to it *after* the
            # client has already started connecting.
            probe = SweepService(engine)
            host, port = await probe.start()
            await probe.stop()
            service = SweepService(engine, host=host, port=port)

            async def bind_late():
                await asyncio.sleep(0.3)
                await service.start()

            binder = asyncio.create_task(bind_late())
            client = ServiceClient(host, port)
            try:
                await client.connect(timeout=10.0)
                alive = await client.ping()
            finally:
                await binder
                await client.aclose()
                await service.stop()
            return alive

        assert run(scenario()) is True

    def test_connect_without_timeout_fails_fast(self):
        async def scenario():
            client = ServiceClient("127.0.0.1", 1)
            with pytest.raises(OSError):
                await client.connect()

        run(scenario())

    def test_connect_timeout_eventually_raises(self):
        async def scenario():
            client = ServiceClient("127.0.0.1", 1)
            with pytest.raises(OSError):
                await client.connect(timeout=0.3)

        run(scenario())


class TestServeCli:
    def test_cli_serve_end_to_end(self, tmp_path):
        """`python -m repro serve` + two sequential clients: cold run then a
        warm run served from the artifact cache (zero executed jobs)."""
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--cache-dir",
                str(tmp_path / "cache"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r":(\d+) ", banner)
            assert match, f"no port in serve banner: {banner!r}"
            port = int(match.group(1))

            from repro.service import run_sweep

            ticks = []
            cold = run_sweep(
                "127.0.0.1",
                port,
                "characterize",
                {"fast": True},
                on_progress=lambda d, t, label: ticks.append((d, t)),
                timeout=TIMEOUT * 4,
                connect_timeout=TIMEOUT,  # rides out a server still binding
            )
            warm = run_sweep(
                "127.0.0.1", port, "characterize", {"fast": True}, timeout=TIMEOUT * 4
            )
            assert cold.payload["total_records"] == warm.payload["total_records"] > 0
            assert ticks, "cold run must stream progress events"
            assert warm.elapsed_seconds < cold.elapsed_seconds
        finally:
            process.terminate()
            process.wait(timeout=15)


def _unserialisable_workload(params, engine):
    return {"x": np.zeros(3)}  # ndarray: json.dumps will choke


def _bulky_workload(params, engine):
    """Deterministic payload whose JSON encoding can be made arbitrarily big."""
    count = int(params.get("count", 8))
    return {
        "rows": [{"index": i, "value": i * i, "tag": f"row-{i:04d}"} for i in range(count)],
        "total": sum(i * i for i in range(count)),
    }


class TestResultSerialisation:
    def test_unserialisable_payload_becomes_error_event(self, tmp_path):
        """A payload json cannot encode must terminate the request with an
        error event — never a silently dead task and a hung client."""
        register_workload("toy-unserialisable", _unserialisable_workload)
        try:

            async def scenario():
                engine = SweepEngine(cache=ArtifactCache(tmp_path))
                async with running_service(engine) as service:
                    host, port = service.address
                    async with ServiceClient(host, port) as client:
                        with pytest.raises(ServiceError, match="not serialisable"):
                            await client.submit("toy-unserialisable")
                        return await client.ping()

            assert run(scenario()) is True
        finally:
            unregister_workload("toy-unserialisable")

    def test_large_payload_rides_binary_result_frame(self, tmp_path, monkeypatch):
        """Payloads over RESULT_BINARY_BYTES ship as a v5 binary frame
        (result header + raw JSON bytes) and must decode to exactly the
        payload an inline result would have carried."""
        monkeypatch.setattr(protocol, "RESULT_BINARY_BYTES", 64)
        register_workload("toy-bulky", _bulky_workload)
        try:

            async def scenario():
                engine = SweepEngine(cache=ArtifactCache(tmp_path))
                async with running_service(engine) as service:
                    host, port = service.address
                    async with ServiceClient(host, port) as client:
                        result = await client.submit("toy-bulky", {"count": 64})
                        alive = await client.ping()
                return result, alive

            result, alive = run(scenario())
            assert alive is True, "connection must stay usable after a binary result"
            assert result.payload == _bulky_workload({"count": 64}, None)
        finally:
            unregister_workload("toy-bulky")

    def test_binary_threshold_matches_the_shipped_constant(self, tmp_path):
        """Same round trip against the real 256 KiB threshold: a payload
        whose JSON encoding exceeds RESULT_BINARY_BYTES arrives intact."""
        count = 12_000  # ~ 600 KB of JSON, comfortably over 256 KiB
        expected = _bulky_workload({"count": count}, None)
        encoded = len(json.dumps(expected, sort_keys=True).encode("utf-8"))
        assert encoded > protocol.RESULT_BINARY_BYTES, (
            f"test payload must exceed the binary threshold ({encoded} bytes)"
        )
        register_workload("toy-bulky", _bulky_workload)
        try:

            async def scenario():
                engine = SweepEngine(cache=ArtifactCache(tmp_path))
                async with running_service(engine) as service:
                    host, port = service.address
                    async with ServiceClient(host, port) as client:
                        return await client.submit("toy-bulky", {"count": count})

            assert run(scenario()).payload == expected
        finally:
            unregister_workload("toy-bulky")


class TestMontecarloWorkload:
    def test_montecarlo_is_engine_routed_and_cached(self, tmp_path):
        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            ticks = []
            async with running_service(engine) as service:
                host, port = service.address
                async with ServiceClient(host, port) as client:
                    cold = await client.submit(
                        "montecarlo",
                        {"samples": 16, "seed": 7},
                        on_progress=lambda d, t, label: ticks.append((d, t)),
                    )
                    warm = await client.submit("montecarlo", {"samples": 16, "seed": 7})
            return cold, warm, ticks, engine.stats

        cold, warm, ticks, stats = run(scenario())
        assert cold.payload["sigma_v_blb"] == warm.payload["sigma_v_blb"]
        assert set(cold.payload["sigma_v_blb"]) == {"0.5ns", "1.0ns", "1.5ns", "2.0ns"}
        assert ticks == [(1, 1)], "the single vectorised job reports one tick"
        assert stats.jobs_executed == 1 and stats.cache_hits == 1


class TestDnnWorkload:
    def test_sharded_dnn_accuracy_is_bit_identical(self, tmp_path):
        """The sharded DNN evaluation merges integer hit counts, so any
        shard count reproduces the unsharded accuracies bit for bit."""
        from repro.service.workloads import _dnn_shard

        params = {"model": "VGG16", "modes": ["float32", "int4"]}

        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine) as service:
                host, port = service.address
                async with ServiceClient(host, port) as client:
                    whole = await client.submit("dnn", {**params, "shards": 1})
                    sharded = await client.submit("dnn", {**params, "shards": 3})
            return whole, sharded

        whole, sharded = run(scenario())
        assert whole.payload["shards"] == 1 and sharded.payload["shards"] == 3
        assert sharded.payload["samples"] == whole.payload["samples"]
        assert sharded.payload["reports"] == whole.payload["reports"]
        # a direct single-window evaluation anchors the merge arithmetic:
        # summed per-shard hit counts over samples IS the full-set mean
        counts = _dnn_shard(
            "VGG16", ("float32", "int4"), True, (0, whole.payload["samples"])
        )
        assert counts["samples"] == whole.payload["samples"]
        for mode in ("float32", "int4"):
            report = whole.payload["reports"][mode]
            assert report["top1"] == counts[f"{mode}_top1"] / counts["samples"]
            assert report["top5"] == counts[f"{mode}_top5"] / counts["samples"]

    def test_dnn_rejects_unknown_model_and_mode(self, tmp_path):
        async def scenario():
            engine = SweepEngine(cache=ArtifactCache(tmp_path))
            async with running_service(engine) as service:
                host, port = service.address
                async with ServiceClient(host, port) as client:
                    with pytest.raises(ServiceError, match="unknown model"):
                        await client.submit("dnn", {"model": "AlexNet"})
                    with pytest.raises(ServiceError, match="unknown mode"):
                        await client.submit("dnn", {"modes": ["float64"]})
                    with pytest.raises(ServiceError, match="shards"):
                        await client.submit("dnn", {"shards": 0})

        run(scenario())
