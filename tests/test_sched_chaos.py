"""Adversarial scheduling harness for the multi-tenant priority scheduler.

Runs concurrent mixed-priority sweeps against one live cluster while a
seeded :class:`ChaosSchedule` (``tests/conftest.py``) interleaves the full
event zoo — preemptions, resumes, steals, straggler splits, a mid-run pool
resize and a SIGKILLed worker — and asserts the two invariants that make
the scheduler safe to ship:

* **bit-identity** — every sweep's merged result equals its serial
  reference exactly, whatever the interleaving;
* **exact progress** — each sweep's progress stream is monotone and ends
  at precisely its job count (preemption re-queues never lose or
  double-count work).

A deterministic preemption scenario then pins the event/counter surface
(``preempted`` / ``resumed``, ``repro_sched_*``), and the recovery test
SIGKILLs a ``serve`` subprocess *mid-preemption* — journal holding a
``paused`` transition — and proves ``--resume`` replays to bit-identical
results.

Every live-cluster test guards itself with ``START_TIMEOUT``-bounded waits;
the CI step adds outer ``timeout`` guards on top.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.cluster import DistributedExecutor
from repro.journal import JobJournal, default_journal_path
from repro.runtime import Job, SerialExecutor, SweepEngine
from repro.sched import JOB_CLASSES, SchedPolicy
from repro.service import ServiceClient, ServiceError

from test_cluster import (
    START_TIMEOUT,
    _await_workers,
    _slow_seeded,
    _spawn_throttled_worker,
)
from test_resilience import TIMEOUT, _read_banner_port, _spawn_serve

#: Entropy offset separating the interactive sweep's values from the batch
#: sweep's (both derive from the plan's seed).
_INTERACTIVE_ENTROPY = 500


def _jobs(entropy: int, count: int, seconds: float, tag: str) -> list:
    return [
        Job(fn=_slow_seeded, args=(entropy, i, seconds), name=f"{tag}[{i}]")
        for i in range(count)
    ]


def _serial(entropy: int, count: int, tag: str) -> list:
    return SerialExecutor().execute(_jobs(entropy, count, 0.0, tag))


class TestChaosSchedules:
    """Randomized mixed-priority interleavings vs serial references."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mixed_priority_sweeps_bit_identical_with_exact_progress(
        self, seed, chaos_schedule
    ):
        plan = chaos_schedule(seed)
        executor = DistributedExecutor(
            workers=2,
            chunksize=plan.probe,
            chunk_window=plan.window,
            heartbeat_interval=0.05,
            heartbeat_timeout=2.0,
            start_timeout=START_TIMEOUT,
        )
        executor.start()
        if executor._fallback is not None:
            pytest.skip("cluster cannot start in this environment")
        batch_serial = _serial(plan.entropy, plan.count, "batch")
        interactive_serial = _serial(
            plan.entropy + _INTERACTIVE_ENTROPY, plan.interactive_count, "urgent"
        )
        stragglers = []
        batch_ticks: list = []
        interactive_ticks: list = []
        batch_outcome: dict = {}
        interactive_started = threading.Event()
        victim = executor.worker_pids[0]
        killed: list = []

        def batch_progress(done: int, total: int, label: str) -> None:
            batch_ticks.append((done, total))
            if done >= plan.interactive_after_done:
                interactive_started.set()
            if plan.kill_one and done >= 3 and not killed:
                os.kill(victim, signal.SIGKILL)
                killed.append(victim)

        def run_batch() -> None:
            try:
                batch_outcome["results"] = executor.execute(
                    _jobs(plan.entropy, plan.count, 0.01, "batch"),
                    progress=batch_progress,
                    sched={"class": "batch", "priority": plan.batch_priority},
                )
            except BaseException as error:  # surfaced on join below
                batch_outcome["error"] = error
            finally:
                interactive_started.set()  # never leave the main thread hanging

        runner = threading.Thread(target=run_batch)
        try:
            stragglers.append(
                _spawn_throttled_worker(executor.address, throttle=plan.throttle)
            )
            _await_workers(executor, 3)
            runner.start()
            assert interactive_started.wait(timeout=START_TIMEOUT)
            if plan.resize_mid_run:
                stragglers.append(
                    _spawn_throttled_worker(
                        executor.address, throttle=plan.throttle, name="resize"
                    )
                )
            interactive = executor.execute(
                _jobs(
                    plan.entropy + _INTERACTIVE_ENTROPY,
                    plan.interactive_count,
                    0.01,
                    "urgent",
                ),
                progress=lambda d, t, l: interactive_ticks.append((d, t)),
                sched={"class": "interactive", "priority": plan.interactive_priority},
            )
            runner.join(timeout=START_TIMEOUT)
            assert not runner.is_alive(), "the batch sweep never finished"
            if "error" in batch_outcome:
                raise batch_outcome["error"]

            # bit-identity, whatever interleaving the chaos produced
            assert interactive == interactive_serial
            assert batch_outcome["results"] == batch_serial

            # exact progress: monotone, terminating at precisely the totals
            for ticks, total in (
                (batch_ticks, plan.count),
                (interactive_ticks, plan.interactive_count),
            ):
                assert ticks, "sweep produced no progress ticks"
                dones = [done for done, _ in ticks]
                assert dones == sorted(dones)
                assert all(t == total for _, t in ticks)
                assert dones[-1] == total

            status = executor.status()
            assert set(status["sched"]["queued_jobs_by_class"]) == set(JOB_CLASSES)
            assert all(
                depth == 0
                for depth in status["sched"]["queued_jobs_by_class"].values()
            ), "queues must be drained after both sweeps completed"
            assert status["sched"]["paused_runs"] == 0
            assert set(status["sched"]["stats"]) == {
                "preempt_requests",
                "preemptions",
                "resumes",
                "jobs_requeued",
            }
            if plan.kill_one:
                assert killed, "the victim worker was never killed"
                assert status["stats"]["workers_lost"] >= 1
        finally:
            executor.close()
            for straggler in stragglers:
                if straggler.poll() is None:
                    straggler.terminate()
                    straggler.wait(timeout=10)


class TestDeterministicPreemption:
    """A pinned scenario in which preemption *must* fire: one fully busy
    worker, one oversized in-flight batch chunk, one urgent arrival."""

    def test_interactive_preempts_saturated_batch(self):
        executor = DistributedExecutor(
            workers=1,
            chunksize=12,  # the whole batch sweep rides one chunk
            heartbeat_interval=0.05,
            heartbeat_timeout=5.0,
            start_timeout=START_TIMEOUT,
        )
        executor.start()
        if executor._fallback is not None:
            pytest.skip("cluster cannot start in this environment")
        batch_serial = _serial(4242, 12, "batch")
        interactive_serial = _serial(4243, 4, "urgent")
        events: list = []
        subscription = obs.EVENTS.subscribe(events.append)
        batch_outcome: dict = {}
        dispatched = threading.Event()

        def watch_dispatch(event: dict) -> None:
            if event.get("type") == "chunk_dispatched":
                dispatched.set()

        watcher = obs.EVENTS.subscribe(watch_dispatch)

        def run_batch() -> None:
            try:
                batch_outcome["results"] = executor.execute(
                    _jobs(4242, 12, 0.1, "batch"),
                    trace="chaos-batch",
                    sched="batch",
                )
                batch_outcome["at"] = time.monotonic()
            except BaseException as error:
                batch_outcome["error"] = error

        runner = threading.Thread(target=run_batch)
        try:
            runner.start()
            assert dispatched.wait(timeout=START_TIMEOUT)
            interactive = executor.execute(
                _jobs(4243, 4, 0.01, "urgent"),
                trace="chaos-urgent",
                sched={"class": "interactive"},
            )
            interactive_done_at = time.monotonic()
            runner.join(timeout=START_TIMEOUT)
            assert not runner.is_alive()
            if "error" in batch_outcome:
                raise batch_outcome["error"]

            assert interactive == interactive_serial
            assert batch_outcome["results"] == batch_serial
            # the urgent sweep jumped the queue: it finished first even
            # though the batch sweep owned the only slot when it arrived
            assert interactive_done_at <= batch_outcome["at"]

            kinds = [event["type"] for event in events]
            assert "preempted" in kinds
            assert "resumed" in kinds
            preempted = next(e for e in events if e["type"] == "preempted")
            assert preempted["trace"] == "chaos-batch"
            assert preempted["requeued"] >= 1
            resumed = next(e for e in events if e["type"] == "resumed")
            assert resumed["trace"] == "chaos-batch"

            stats = executor.status()["sched"]["stats"]
            assert stats["preempt_requests"] >= 1
            assert stats["preemptions"] >= 1
            assert stats["resumes"] >= 1
            assert stats["jobs_requeued"] >= 1
        finally:
            obs.EVENTS.unsubscribe(subscription)
            obs.EVENTS.unsubscribe(watcher)
            executor.close()


class TestPreemptionRecovery:
    """SIGKILL ``serve`` mid-preemption; ``--resume`` replays bit-identically."""

    BATCH = {"samples": 8000, "seed": 11, "shards": 16}
    URGENT = {"samples": 64, "seed": 5, "shards": 2}

    def test_sigkill_mid_preemption_resumes_bit_identical(self, tmp_path):
        cache_dir = tmp_path / "cache"

        # baseline payloads from uninterrupted in-process runs
        from repro.service.workloads import get_workload
        from repro.runtime import ArtifactCache

        baseline_engine = SweepEngine(cache=ArtifactCache(tmp_path / "baseline"))
        batch_baseline = get_workload("montecarlo")(dict(self.BATCH), baseline_engine)
        urgent_baseline = get_workload("montecarlo")(dict(self.URGENT), baseline_engine)

        # --- cold run on a distributed 1-slot engine, killed mid-preemption
        process = _spawn_serve(
            cache_dir,
            "--executor",
            "distributed",
            "--workers",
            "1",
            "--chunksize",
            "16",
        )
        try:
            port = _read_banner_port(process)
            journal_path = default_journal_path(cache_dir)

            async def submit_and_kill_mid_preemption():
                batch_client = await ServiceClient("127.0.0.1", port).connect()
                urgent_client = await ServiceClient("127.0.0.1", port).connect()
                watch_client = await ServiceClient("127.0.0.1", port).connect()
                dispatched = asyncio.Event()

                async def watch_for_batch_dispatch():
                    # the server streams its coordinator's obs events over
                    # the watch op; the batch sweep rides one 16-job chunk
                    # (the urgent sweep's chunks carry only 2)
                    async for event in watch_client.watch():
                        if (
                            event.get("type") == "chunk_dispatched"
                            and event.get("jobs", 0) >= 8
                        ):
                            dispatched.set()
                            return

                watch_task = asyncio.create_task(watch_for_batch_dispatch())
                batch_task = asyncio.create_task(
                    batch_client.submit(
                        "montecarlo", dict(self.BATCH), sched={"class": "batch"}
                    )
                )
                # wait until the batch chunk provably occupies the 1-slot
                # worker; an urgent arrival now can only be served by
                # preempting it
                await dispatched.wait()
                urgent_task = asyncio.create_task(
                    urgent_client.submit(
                        "montecarlo", dict(self.URGENT), sched={"class": "interactive"}
                    )
                )
                # the urgent arrival forces a preemption on the saturated
                # 1-slot worker; the service journals it as a `paused`
                # transition — that record on disk IS "mid-preemption"
                while True:
                    kinds = [
                        record["record"]
                        for record in JobJournal(journal_path).records()
                    ]
                    if "paused" in kinds:
                        break
                    await asyncio.sleep(0.02)
                os.kill(process.pid, signal.SIGKILL)
                for task in (batch_task, urgent_task, watch_task):
                    task.cancel()
                    with contextlib.suppress(
                        ConnectionError,
                        OSError,
                        ServiceError,
                        asyncio.CancelledError,
                        asyncio.IncompleteReadError,
                    ):
                        await task
                for client in (batch_client, urgent_client, watch_client):
                    with contextlib.suppress(ConnectionError, OSError):
                        await client.aclose()

            asyncio.run(
                asyncio.wait_for(submit_and_kill_mid_preemption(), TIMEOUT * 4)
            )
        finally:
            process.kill()
            process.wait(timeout=15)

        journal = JobJournal(default_journal_path(cache_dir))
        kinds = [record["record"] for record in journal.records()]
        assert "paused" in kinds, "no preemption transition reached the journal"
        pending = journal.pending()
        assert pending, "the killed sweeps must be journal-pending"
        assert {entry.workload for entry in pending} == {"montecarlo"}
        assert any(entry.params == self.BATCH for entry in pending)

        # --- restart with --resume: replay, then resubmit both sweeps ----
        process = _spawn_serve(
            cache_dir,
            "--resume",
            "--executor",
            "distributed",
            "--workers",
            "1",
            "--chunksize",
            "16",
        )
        try:
            port = _read_banner_port(process)
            for line in process.stdout:
                if "resumed" in line:
                    assert "resumed 0" not in line
                    break

            async def await_replay_then_resubmit():
                client = await ServiceClient("127.0.0.1", port).connect()
                while True:
                    status = await client.status()
                    if status["in_flight"] == 0 and status["journal"]["pending"] == 0:
                        break
                    await asyncio.sleep(0.05)
                batch = await client.submit(
                    "montecarlo", dict(self.BATCH), sched={"class": "batch"}
                )
                urgent = await client.submit("montecarlo", dict(self.URGENT))
                await client.aclose()
                return batch, urgent

            batch_result, urgent_result = asyncio.run(
                asyncio.wait_for(await_replay_then_resubmit(), TIMEOUT * 8)
            )
        finally:
            process.terminate()
            process.wait(timeout=15)

        # bit-identical to the uninterrupted runs (floats survive JSON
        # exactly: dumps uses the shortest round-trip repr)
        assert batch_result.payload["sigma_v_blb"] == batch_baseline["sigma_v_blb"]
        assert batch_result.payload == batch_baseline
        assert urgent_result.payload == urgent_baseline


class TestSchedPolicyParsing:
    """The wire-facing policy parser (rejections surface as bad requests)."""

    def test_parse_accepts_class_names_and_objects(self):
        assert SchedPolicy.parse(None) == SchedPolicy()
        assert SchedPolicy.parse("interactive").priority == 10
        assert SchedPolicy.parse({"class": "batch", "priority": -2}).priority == -2
        policy = SchedPolicy.parse({"class": "interactive"})
        assert policy.job_class == "interactive" and policy.priority == 10
        assert SchedPolicy.parse(policy) is policy

    def test_parse_rejects_malformed_policies(self):
        for bad in ("urgent", {"class": "urgent"}, {"priority": "high"}, 42, 3.5):
            with pytest.raises(ValueError):
                SchedPolicy.parse(bad)
        with pytest.raises(ValueError):
            SchedPolicy.parse({"class": "batch", "priority": 10**9})

    def test_round_trip_and_describe(self):
        policy = SchedPolicy.parse({"class": "interactive", "priority": 7})
        assert SchedPolicy.parse(policy.to_dict()) == policy
        assert "interactive" in policy.describe()
