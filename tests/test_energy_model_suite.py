"""Tests for the energy models (Eq. 7-8), the model suite and calibration."""

import numpy as np
import pytest

from repro.circuits.conditions import OperatingConditions
from repro.core.calibration import calibrated_suite, clear_calibration_cache
from repro.core.characterization import CharacterizationPlan
from repro.core.energy_model import DischargeEnergyModel, WriteEnergyModel
from repro.core.model_suite import OptimaModelSuite
from repro.circuits.technology import tsmc65_like


class TestWriteEnergyModel:
    def test_tracks_reference(self, quick_calibration):
        sweep = quick_calibration.data.write_energy
        model = quick_calibration.suite.write_energy
        predicted = model.energy(sweep.vdd, sweep.temperature)
        assert float(np.max(np.abs(predicted - sweep.energy))) < 2e-15

    def test_word_energy_scaling(self, suite):
        per_bit = suite.write_energy.energy(1.0, 300.15)
        word = suite.write_energy.word_energy(1.0, 300.15, bits=4)
        assert float(word) == pytest.approx(4.0 * float(per_bit))
        with pytest.raises(ValueError):
            suite.write_energy.word_energy(1.0, 300.15, bits=0)

    def test_serialisation_roundtrip(self, suite):
        clone = WriteEnergyModel.from_dict(suite.write_energy.to_dict())
        assert float(clone.energy(1.0, 300.15)) == pytest.approx(
            float(suite.write_energy.energy(1.0, 300.15))
        )

    def test_default_degrees_factory(self):
        model = WriteEnergyModel.with_default_degrees()
        assert model.model.degrees == [2, 1]


class TestDischargeEnergyModel:
    def test_tracks_reference(self, quick_calibration):
        sweep = quick_calibration.data.discharge_energy
        model = quick_calibration.suite.discharge_energy
        predicted = model.energy(sweep.delta_v_bl, sweep.vdd, sweep.temperature)
        assert float(np.mean(np.abs(predicted - sweep.energy))) < 1e-15

    def test_monotone_in_swing(self, suite):
        model = suite.discharge_energy
        swings = np.linspace(0.0, 0.5, 8)
        energies = model.energy(swings, 1.0, 300.15)
        assert np.all(np.diff(energies) > -1e-18)

    def test_non_negative(self, suite):
        model = suite.discharge_energy
        assert float(model.energy(-0.2, 1.0, 300.15)) >= 0.0

    def test_serialisation_roundtrip(self, suite):
        clone = DischargeEnergyModel.from_dict(suite.discharge_energy.to_dict())
        assert float(clone.energy(0.3, 1.0, 300.15)) == pytest.approx(
            float(suite.discharge_energy.energy(0.3, 1.0, 300.15))
        )

    def test_default_degrees_factory(self):
        model = DischargeEnergyModel.with_default_degrees()
        assert model.model.degrees == [1, 3, 1]


class TestModelSuite:
    def test_conditions_defaults(self, suite):
        nominal = float(suite.discharge_voltage(1.0e-9, 0.9))
        explicit = float(
            suite.discharge_voltage(
                1.0e-9,
                0.9,
                OperatingConditions(vdd=suite.vdd_nominal, temperature=suite.temperature_nominal),
            )
        )
        assert nominal == pytest.approx(explicit)

    def test_energy_queries(self, suite):
        conditions = OperatingConditions(vdd=1.0, temperature=300.15)
        assert suite.write_energy_per_bit(conditions) > 0.0
        assert suite.word_write_energy(conditions) > suite.write_energy_per_bit(conditions)
        assert float(suite.discharge_event_energy(0.3, conditions)) > 0.0

    def test_save_and_load_roundtrip(self, suite, tmp_path):
        path = suite.save(tmp_path / "suite.json")
        loaded = OptimaModelSuite.load(path)
        assert loaded.technology_name == suite.technology_name
        assert float(loaded.discharge_voltage(1.0e-9, 0.8)) == pytest.approx(
            float(suite.discharge_voltage(1.0e-9, 0.8))
        )
        assert float(loaded.mismatch_sigma(1.0e-9, 0.8)) == pytest.approx(
            float(suite.mismatch_sigma(1.0e-9, 0.8))
        )

    def test_metadata_contains_rms_errors(self, suite):
        assert "rms_errors" in suite.metadata
        assert suite.metadata["record_count"] > 0


class TestCalibrationCache:
    def test_cache_returns_same_object(self):
        clear_calibration_cache()
        technology = tsmc65_like()
        plan = CharacterizationPlan.quick()
        first = calibrated_suite(technology, plan)
        second = calibrated_suite(technology, plan)
        assert first is second
        clear_calibration_cache()

    def test_describe_mentions_technology(self, quick_calibration):
        assert "tsmc65-like" in quick_calibration.describe()
