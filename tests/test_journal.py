"""Unit tests for the persistent job journal (:mod:`repro.journal`).

The journal is the crash-recovery substrate of ``serve --resume``: these
tests pin down the append/replay lifecycle, torn-tail tolerance (the file
state a ``SIGKILL`` mid-append leaves behind), key deduplication and the
atomic compaction that keeps the file from growing forever.  The
end-to-end recovery path (kill a real ``serve`` subprocess, restart with
``--resume``) lives in ``tests/test_resilience.py``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import wire
from repro.journal import (
    JOURNAL_FILENAME,
    JobJournal,
    JournalEntry,
    default_journal_path,
)


@pytest.fixture()
def journal(tmp_path) -> JobJournal:
    return JobJournal(tmp_path / "journal.ndjson")


KEY_A = "aa" * 32
KEY_B = "bb" * 32


class TestLifecycle:
    def test_submitted_then_completed_leaves_nothing_pending(self, journal):
        journal.record_submitted(KEY_A, "dse", {"fast": True})
        assert [entry.key for entry in journal.pending()] == [KEY_A]
        journal.record_finished(KEY_A, "completed")
        assert journal.pending() == []

    def test_all_terminal_statuses_clear_the_entry(self, journal):
        for index, status in enumerate(("completed", "failed", "cancelled")):
            key = f"{index:02d}" * 32
            journal.record_submitted(key, "toy", {})
            journal.record_finished(key, status)
        assert journal.pending() == []

    def test_invalid_terminal_status_rejected(self, journal):
        with pytest.raises(ValueError, match="status must be one of"):
            journal.record_finished(KEY_A, "exploded")

    def test_pending_preserves_submission_order_and_params(self, journal):
        journal.record_submitted(KEY_A, "dse", {"fast": True})
        journal.record_submitted(KEY_B, "montecarlo", {"samples": 8, "seed": 3})
        entries = journal.pending()
        assert [entry.key for entry in entries] == [KEY_A, KEY_B]
        assert entries[0] == JournalEntry(
            key=KEY_A,
            workload="dse",
            params={"fast": True},
            submitted_at=entries[0].submitted_at,
        )
        assert entries[1].params == {"samples": 8, "seed": 3}
        assert entries[0].submitted_at > 0

    def test_duplicate_submissions_dedupe_by_key(self, journal):
        journal.record_submitted(KEY_A, "dse", {"fast": True})
        journal.record_submitted(KEY_A, "dse", {"fast": True})
        assert len(journal.pending()) == 1
        journal.record_finished(KEY_A, "completed")
        assert journal.pending() == []

    def test_missing_file_reads_as_empty(self, tmp_path):
        journal = JobJournal(tmp_path / "never-created.ndjson")
        assert journal.records() == []
        assert journal.pending() == []
        assert journal.compact() == 0


class TestCrashArtifacts:
    def test_torn_final_line_is_skipped(self, journal):
        """A SIGKILL mid-append leaves a partial last line; readers must
        recover every record before it."""
        journal.record_submitted(KEY_A, "dse", {})
        with open(journal.path, "ab") as handle:
            handle.write(b'{"ts": 1.0, "record": "com')  # torn mid-write
        assert [record["record"] for record in journal.records()] == ["submitted"]
        assert [entry.key for entry in journal.pending()] == [KEY_A]

    def test_garbage_lines_are_skipped(self, journal):
        journal.record_submitted(KEY_A, "dse", {})
        with open(journal.path, "ab") as handle:
            handle.write(b"not json\n")
            handle.write(b'[1, 2, 3]\n')  # valid JSON, not an object
        journal.record_finished(KEY_A, "completed")
        assert journal.pending() == []
        assert len(journal.records()) == 2

    def test_records_ride_the_wire_framing(self, journal):
        """Journal lines are canonical wire frames: decode_message round-trips."""
        journal.record_submitted(KEY_A, "dse", {"fast": True})
        (line,) = journal.path.read_bytes().splitlines()
        record = wire.decode_message(line)
        assert record["record"] == "submitted"
        assert record["key"] == KEY_A
        assert record["params"] == {"fast": True}


class TestCompaction:
    def test_compact_drops_terminal_records(self, journal):
        journal.record_submitted(KEY_A, "dse", {})
        journal.record_finished(KEY_A, "completed")
        journal.record_submitted(KEY_B, "montecarlo", {"samples": 4})
        dropped = journal.compact()
        assert dropped == 2  # submitted(A) + completed(A)
        assert [entry.key for entry in journal.pending()] == [KEY_B]
        # the rewritten file holds exactly the pending submission
        assert len(journal.records()) == 1

    def test_compact_then_append_keeps_working(self, journal):
        journal.record_submitted(KEY_A, "dse", {})
        journal.compact()
        journal.record_finished(KEY_A, "completed")
        assert journal.pending() == []

    def test_compact_is_atomic_no_tmp_left_behind(self, journal):
        journal.record_submitted(KEY_A, "dse", {})
        journal.compact()
        leftovers = list(journal.path.parent.glob("*.tmp"))
        assert leftovers == []


class TestDefaults:
    def test_default_journal_path_lives_in_cache_dir(self, tmp_path):
        assert default_journal_path(tmp_path) == tmp_path / JOURNAL_FILENAME

    def test_default_journal_path_tracks_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_journal_path() == tmp_path / "env-cache" / JOURNAL_FILENAME

    def test_describe_counts_pending(self, journal):
        journal.record_submitted(KEY_A, "dse", {})
        assert "1 pending" in journal.describe()

    def test_cache_clear_spares_the_journal(self, tmp_path):
        """The journal lives inside the cache dir; `cache clear` must not
        eat it (it only removes .npz artifacts)."""
        from repro.runtime import ArtifactCache

        cache = ArtifactCache(tmp_path)
        journal = JobJournal(default_journal_path(tmp_path))
        journal.record_submitted(KEY_A, "dse", {})
        cache.clear()
        assert journal.path.exists()
        assert [entry.key for entry in journal.pending()] == [KEY_A]
