"""Property-based tests (hypothesis) for core data structures and invariants."""

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.converters.adc import Adc
from repro.converters.dac import LinearDac
from repro.core.metrics import rms_error, speedup_ratio
from repro.core.polynomials import Polynomial1D, SeparableProductModel
from repro.dnn.imc_injection import ExactBackend, LutBackend
from repro.dnn.quantization import ActivationQuantizer, QuantizationScheme, quantize_weights_symmetric
from repro.eventsim.kernel import SimulationKernel
from repro.multiplier.lut import ProductLookupTable


class TestPolynomialProperties:
    @given(
        coefficients=st.lists(
            st.floats(min_value=-5.0, max_value=5.0, allow_nan=False), min_size=1, max_size=6
        ),
        scale=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        x=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    )
    def test_scaling_is_linear(self, coefficients, scale, x):
        poly = Polynomial1D(np.array(coefficients))
        scaled = poly.scaled(scale)
        assert float(scaled(x)) == pytest.approx(scale * float(poly(x)), rel=1e-9, abs=1e-9)

    @given(
        degree_x=st.integers(min_value=0, max_value=3),
        degree_y=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_separable_fit_recovers_separable_data(self, degree_x, degree_y, seed):
        rng = np.random.default_rng(seed)
        coeff_x = rng.uniform(0.5, 1.5, degree_x + 1)
        coeff_y = rng.uniform(0.5, 1.5, degree_y + 1)
        x = rng.uniform(-1.0, 1.0, 200)
        y = rng.uniform(-1.0, 1.0, 200)
        target = np.polynomial.polynomial.polyval(x, coeff_x) * np.polynomial.polynomial.polyval(
            y, coeff_y
        )
        model = SeparableProductModel(degrees=(degree_x, degree_y))
        model.fit([x, y], target)
        assert model.rms_residual([x, y], target) < 1e-6


class TestConverterProperties:
    @given(
        v_zero=st.floats(min_value=0.1, max_value=0.5),
        span=st.floats(min_value=0.2, max_value=0.7),
        code=st.integers(min_value=0, max_value=15),
    )
    def test_dac_output_always_inside_range(self, v_zero, span, code):
        dac = LinearDac(bits=4, v_zero=v_zero, v_full_scale=v_zero + span)
        voltage = float(dac.voltage(code))
        assert v_zero - 1e-12 <= voltage <= v_zero + span + 1e-12

    @given(code=st.integers(min_value=0, max_value=15))
    def test_dac_inverse_is_exact_on_codes(self, code):
        dac = LinearDac(bits=4, v_zero=0.3, v_full_scale=1.0)
        assert int(dac.code_for_voltage(dac.voltage(code))) == code

    @given(
        voltage=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
        levels=st.integers(min_value=8, max_value=512),
    )
    def test_adc_reconstruction_error_within_half_lsb(self, voltage, levels):
        adc = Adc(levels=levels, gain=0.25 / levels)
        if voltage <= adc.full_scale:
            error = abs(float(adc.quantization_error(voltage)))
            assert error <= adc.lsb / 2.0 + 1e-12


class TestQuantizationProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        scale=st.floats(min_value=0.01, max_value=2.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_weight_quantisation_error_bounded(self, seed, scale):
        rng = np.random.default_rng(seed)
        weights = rng.normal(0.0, scale, size=(20, 6)).astype(np.float32)
        codes, scales = quantize_weights_symmetric(weights, QuantizationScheme())
        reconstructed = codes * scales
        assert float(np.max(np.abs(reconstructed - weights))) <= float(scales.max()) * 0.5 + 1e-7

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_activation_codes_within_range(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(1.0, 2.0, size=300).astype(np.float32)
        quantizer = ActivationQuantizer.calibrate(values, QuantizationScheme())
        codes = quantizer.quantize(values)
        assert codes.min() >= 0
        assert codes.max() <= 15


class TestBackendProperties:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_exact_lut_equals_exact_backend(self, seed):
        rng = np.random.default_rng(seed)
        activations = rng.integers(0, 16, size=(5, 9))
        weights = rng.integers(-8, 8, size=(9, 3))
        lut = LutBackend(ProductLookupTable.exact())
        exact = ExactBackend()
        assert np.allclose(
            lut.matmul(activations, weights, activation_zero_point=int(rng.integers(0, 16))),
            exact.matmul(activations, weights),
        )


class TestMetricProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), min_size=1, max_size=30
        )
    )
    def test_rms_error_of_identical_arrays_is_zero(self, values):
        assert rms_error(values, values) == pytest.approx(0.0, abs=1e-12)

    @given(
        reference=st.floats(min_value=1e-6, max_value=1e3),
        fast=st.floats(min_value=1e-6, max_value=1e3),
    )
    def test_speedup_ratio_is_reciprocal(self, reference, fast):
        assert speedup_ratio(reference, fast) == pytest.approx(1.0 / speedup_ratio(fast, reference))


class TestKernelProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=1e-12, max_value=1e-6, allow_nan=False), min_size=1, max_size=20
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_events_always_execute_in_nondecreasing_time_order(self, delays):
        kernel = SimulationKernel()
        executed_times = []
        for delay in delays:
            kernel.schedule_at(delay, lambda: executed_times.append(kernel.now))
        kernel.run()
        assert executed_times == sorted(executed_times)
        assert len(executed_times) == len(delays)


def _sched_index(index: int) -> int:
    """Identity job for the socketless scheduler properties."""
    return index


# ----------------------------------------------------------------------
# Differential executor identity (module-level helpers so the process
# pool and the cluster workers can pickle them)
# ----------------------------------------------------------------------
def _diff_vector(seed: int, size: int) -> np.ndarray:
    """Deterministic pseudo-random vector: the per-job hot-path stand-in."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal(size).cumsum()


def _diff_batch(jobs) -> list:
    """Whole-group evaluator: one stacked NumPy pass over the batch.

    Each stream keeps its own generator and its identical ``standard_normal``
    call, so the stacked cumulative sum is bit-identical to the per-job path
    — the same hoisting pattern the PVT Monte-Carlo batch uses.
    """
    size = jobs[0].args[1]
    stacked = np.stack(
        [np.random.default_rng(job.args[0]).standard_normal(size) for job in jobs]
    )
    return list(np.cumsum(stacked, axis=1))


def _diff_jobs(entropy: int, count: int, size: int, keyed: bool = False) -> list:
    from repro.runtime import Artifact, Job, job_key

    encode = (lambda value: Artifact(arrays={"v": value})) if keyed else None
    decode = (lambda artifact: artifact.arrays["v"]) if keyed else None
    return [
        Job(
            fn=_diff_vector,
            args=(entropy + index, size),
            name=f"diff[{index}]",
            key=job_key("prop-diff", entropy, index, size) if keyed else None,
            encode=encode,
            decode=decode,
        )
        for index in range(count)
    ]


def _assert_byte_identical(reference: list, candidate: list) -> None:
    assert len(reference) == len(candidate)
    for index, (expected, actual) in enumerate(zip(reference, candidate)):
        expected = np.asarray(expected)
        actual = np.asarray(actual)
        assert actual.dtype == expected.dtype, f"dtype drift at index {index}"
        assert actual.shape == expected.shape, f"shape drift at index {index}"
        assert actual.tobytes() == expected.tobytes(), f"byte drift at index {index}"


@pytest.fixture(scope="module")
def diff_cluster():
    """A small local cluster shared by the distributed differential tests."""
    from repro.cluster import DistributedExecutor

    executor = DistributedExecutor(workers=2, chunksize=2, start_timeout=60.0)
    executor.start()
    if executor._fallback is not None:
        pytest.skip("cluster cannot start in this environment")
    yield executor
    executor.close()


class TestExecutorDifferential:
    """All executor strategies must return byte-identical results at
    identical indices, with and without a vectorised ``batch_fn`` — the
    lock on the vectorised-default hot path."""

    @given(
        entropy=st.integers(min_value=0, max_value=2**20),
        count=st.integers(min_value=1, max_value=24),
        size=st.integers(min_value=1, max_value=64),
        batch_size=st.integers(min_value=1, max_value=16),
        chunksize=st.integers(min_value=1, max_value=8),
        use_batch_fn=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_in_process_executors_byte_identical(
        self, entropy, count, size, batch_size, chunksize, use_batch_fn
    ):
        from repro.runtime import SweepEngine, SweepSpec, make_executor

        batch_fn = _diff_batch if use_batch_fn else None

        def run(executor):
            return SweepEngine(executor).run(
                SweepSpec("diff", _diff_jobs(entropy, count, size), batch_fn=batch_fn)
            )

        reference = run(make_executor("serial"))
        _assert_byte_identical(reference, run(None))  # auto (the default)
        _assert_byte_identical(
            reference, run(make_executor("batch", batch_size=batch_size))
        )
        _assert_byte_identical(
            reference,
            run(make_executor("parallel", max_workers=2, chunksize=chunksize)),
        )

    @given(
        entropy=st.integers(min_value=0, max_value=2**20),
        count=st.integers(min_value=1, max_value=16),
        size=st.integers(min_value=1, max_value=48),
        warm=st.lists(st.integers(min_value=0, max_value=15), max_size=8),
        use_batch_fn=st.booleans(),
    )
    @settings(max_examples=8, deadline=None)
    def test_cache_warm_cold_mix_byte_identical(
        self, entropy, count, size, warm, use_batch_fn
    ):
        """A partially warm artifact cache must not perturb a single byte:
        whichever subset of jobs is served from disk, every executor still
        returns the serial cold-run results."""
        from repro.runtime import ArtifactCache, SweepEngine, SweepSpec, make_executor

        batch_fn = _diff_batch if use_batch_fn else None
        reference = SweepEngine(make_executor("serial")).run(
            SweepSpec("diff", _diff_jobs(entropy, count, size), batch_fn=batch_fn)
        )
        warm_indices = sorted({index for index in warm if index < count})
        for executor in (None, make_executor("batch", batch_size=4)):
            with tempfile.TemporaryDirectory() as root:
                engine = SweepEngine(executor, cache=ArtifactCache(root))
                if warm_indices:
                    jobs = _diff_jobs(entropy, count, size, keyed=True)
                    engine.run(
                        SweepSpec(
                            "warmup",
                            [jobs[index] for index in warm_indices],
                            batch_fn=batch_fn,
                        )
                    )
                mixed = engine.run(
                    SweepSpec(
                        "diff",
                        _diff_jobs(entropy, count, size, keyed=True),
                        batch_fn=batch_fn,
                    )
                )
                _assert_byte_identical(reference, mixed)

    @given(
        entropy=st.integers(min_value=0, max_value=2**16),
        count=st.integers(min_value=1, max_value=10),
        size=st.integers(min_value=1, max_value=32),
        use_batch_fn=st.booleans(),
    )
    @settings(max_examples=4, deadline=None)
    def test_distributed_matches_serial_byte_identical(
        self, diff_cluster, entropy, count, size, use_batch_fn
    ):
        from repro.runtime import SweepEngine, SweepSpec, make_executor

        batch_fn = _diff_batch if use_batch_fn else None
        reference = SweepEngine(make_executor("serial")).run(
            SweepSpec("diff", _diff_jobs(entropy, count, size), batch_fn=batch_fn)
        )
        distributed = SweepEngine(diff_cluster).run(
            SweepSpec("diff", _diff_jobs(entropy, count, size), batch_fn=batch_fn)
        )
        _assert_byte_identical(reference, distributed)


class TestSchedulerProperties:
    """Invariants of the multi-tenant priority scheduler (repro.sched +
    the cluster coordinator's span queues), checked socketlessly against
    the coordinator's real dispatch/preemption code paths.

    Counters under test are process-global obs metrics, so every
    assertion works on before/after deltas.
    """

    @given(
        workers=st.integers(min_value=1, max_value=3),
        chunksize=st.integers(min_value=1, max_value=8),
        runs=st.lists(
            st.tuples(
                st.integers(min_value=-5, max_value=15),  # priority
                st.integers(min_value=1, max_value=20),  # jobs
            ),
            min_size=1,
            max_size=4,
        ),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_lower_priority_dispatch_while_higher_queued(
        self, workers, chunksize, runs, seed
    ):
        """Whatever worker asks next, the chunk it gets always carries the
        globally highest queued priority — lower-priority spans can wait
        on any queue without ever jumping ahead."""
        import asyncio

        from repro.cluster.coordinator import Coordinator, _Run, _Span, _WorkerLink
        from repro.runtime import Job
        from repro.sched import SchedPolicy

        async def scenario():
            coordinator = Coordinator()
            links = []
            for index in range(workers):
                link = _WorkerLink(f"w{index}", "w", 0, 1, writer=None)
                coordinator._links[link.id] = link
                links.append(link)
            total_jobs = 0
            for priority, count in runs:
                run = _Run(
                    [Job(fn=_sched_index, args=(i,)) for i in range(count)],
                    None,
                    chunksize,
                    policy=SchedPolicy(priority=priority),
                )
                coordinator._distribute([_Span(run, 0, count)])
                total_jobs += count
            rng = np.random.default_rng(seed)
            dispatched = 0
            while True:
                top = coordinator._waiting_priority()
                if top is None:
                    break
                thief = links[int(rng.integers(0, workers))]
                chunk = coordinator._next_chunk(thief)
                assert chunk is not None, "queued work but nothing dispatchable"
                assert chunk.run.policy.priority == top, (
                    f"dispatched priority {chunk.run.policy.priority} while "
                    f"priority {top} was queued"
                )
                dispatched += len(chunk)
            assert dispatched == total_jobs

        asyncio.run(scenario())

    @given(
        count=st.integers(min_value=2, max_value=40),
        chunk_take=st.integers(min_value=1, max_value=40),
        kept=st.integers(min_value=0, max_value=45),
    )
    @settings(max_examples=60, deadline=None)
    def test_preemption_split_never_loses_or_duplicates_indices(
        self, count, chunk_take, kept
    ):
        """A preemption split-ack with an arbitrary ``kept`` leaves every
        job index exactly once across the shrunk chunk and the requeued
        tail — granted, declined or out-of-range alike."""
        import asyncio

        from repro.cluster.coordinator import Coordinator, _Run, _Span, _WorkerLink
        from repro.runtime import Job
        from repro.sched import SchedPolicy

        async def scenario():
            coordinator = Coordinator()
            link = _WorkerLink("w1", "w", 0, 1, writer=None)
            coordinator._links["w1"] = link
            run = _Run(
                [Job(fn=_sched_index, args=(i,)) for i in range(count)],
                None,
                chunk_take,
                policy=SchedPolicy(priority=0),
            )
            coordinator._distribute([_Span(run, 0, count)])
            chunk = coordinator._next_chunk(link)
            link.inflight[chunk.id] = chunk
            chunk.preempt_requested = True
            chunk_len = len(chunk)
            before = dict(coordinator.sched_stats)
            coordinator._handle_split_ack(link, {"chunk": chunk.id, "kept": kept})
            after = dict(coordinator.sched_stats)

            queued = [
                index
                for span in list(link.queue) + list(coordinator._orphans)
                for index in range(span.start, span.stop)
            ]
            covered = list(chunk.indices) + queued
            assert sorted(covered) == list(range(count)), (
                "split-ack lost or duplicated job indices"
            )
            assert len(covered) == len(set(covered))

            if 0 <= kept < chunk_len:
                # granted: the tail went back to the queues, the run pauses
                assert run.paused
                assert len(chunk) == kept
                assert after["preemptions"] - before["preemptions"] == 1
                assert (
                    after["jobs_requeued"] - before["jobs_requeued"]
                    == chunk_len - kept
                )
            else:
                # out-of-range kept: declined, nothing moved
                assert not run.paused
                assert not chunk.preempt_requested
                assert len(chunk) == chunk_len
                assert after["preemptions"] == before["preemptions"]
                assert after["jobs_requeued"] == before["jobs_requeued"]

        asyncio.run(scenario())

    @given(
        count=st.integers(min_value=1, max_value=30),
        chunksize=st.integers(min_value=1, max_value=8),
        cuts=st.lists(st.integers(min_value=0, max_value=30), max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_resume_offsets_exact_for_arbitrary_split_points(
        self, count, chunksize, cuts
    ):
        """Preempting at arbitrary split points and resuming through the
        real dispatch path yields every result exactly once, in submission
        order, with an exact monotone progress stream."""
        import asyncio

        from repro.cluster.coordinator import Coordinator, _Run, _Span, _WorkerLink
        from repro.runtime import Job
        from repro.sched import SchedPolicy

        async def scenario():
            coordinator = Coordinator()
            link = _WorkerLink("w1", "w", 0, 1, writer=None)
            coordinator._links["w1"] = link
            ticks = []
            run = _Run(
                [Job(fn=_sched_index, args=(i,)) for i in range(count)],
                lambda done, total, label: ticks.append((done, total)),
                chunksize,
                policy=SchedPolicy(priority=0),
            )
            coordinator._distribute([_Span(run, 0, count)])
            cut_iter = iter(cuts)
            while not run.done:
                chunk = coordinator._next_chunk(link)
                assert chunk is not None, "run unfinished but nothing queued"
                link.inflight[chunk.id] = chunk
                cut = next(cut_iter, None)
                if cut is not None and cut < len(chunk):
                    # preempt mid-chunk: the worker kept ``cut`` jobs
                    chunk.preempt_requested = True
                    coordinator._handle_split_ack(
                        link, {"chunk": chunk.id, "kept": cut}
                    )
                results = [run.jobs[i].run() for i in chunk.indices]
                del link.inflight[chunk.id]
                run.complete_chunk(chunk, results)
            assert run.future.result() == list(range(count))
            assert run.remaining == 0
            dones = [done for done, _ in ticks]
            assert dones == sorted(dones)
            assert dones[-1] == count
            assert all(total == count for _, total in ticks)

        asyncio.run(scenario())
