"""Tests for content hashing and the on-disk artifact cache.

Covers the satellite requirements: hash stability across processes,
invalidation when the technology card / operating conditions / plan / code
version change, corrupt-artifact recovery, and warm characterisation runs
that never touch the reference solver.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
import repro.runtime.jobs as jobs_module
from repro.circuits.conditions import OperatingConditions
from repro.circuits.technology import ProcessCorner, tsmc65_like
from repro.core.characterization import CharacterizationPlan, characterize
from repro.runtime import (
    Artifact,
    ArtifactCache,
    SweepEngine,
    code_version,
    default_cache_dir,
    fingerprint,
    job_key,
)

_SUBPROCESS_KEY_SCRIPT = """\
from repro.circuits.technology import tsmc65_like
from repro.core.characterization import CharacterizationPlan
from repro.runtime import job_key
print(job_key("char-base", tsmc65_like(), CharacterizationPlan.quick()))
"""


class TestFingerprint:
    def test_stable_within_process(self):
        technology = tsmc65_like()
        plan = CharacterizationPlan.quick()
        assert fingerprint(technology, plan) == fingerprint(technology, plan)

    def test_stable_across_processes(self):
        """Keys never depend on hash randomisation, id() or repr caprice."""
        local = job_key("char-base", tsmc65_like(), CharacterizationPlan.quick())
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "271828"  # force a different hash seed
        remote = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_KEY_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert remote == local

    def test_technology_change_invalidates(self):
        base = tsmc65_like()
        assert fingerprint(base) != fingerprint(base.scaled(vth_nominal=0.36))
        assert fingerprint(base) != fingerprint(base.scaled(bitline_capacitance=51e-15))

    def test_plan_change_invalidates(self):
        quick = CharacterizationPlan.quick()
        bigger = CharacterizationPlan.quick()
        bigger = type(bigger)(
            times=quick.times,
            wordline_voltages=quick.wordline_voltages,
            supply_voltages=(0.9, 1.0),
            temperatures_celsius=quick.temperatures_celsius,
            mismatch_wordline_voltages=quick.mismatch_wordline_voltages,
            mismatch_samples=quick.mismatch_samples,
        )
        assert fingerprint(quick) != fingerprint(bigger)

    def test_conditions_change_invalidates(self):
        nominal = OperatingConditions(vdd=1.0, temperature=300.15)
        assert fingerprint(nominal) != fingerprint(nominal.with_vdd(1.05))
        assert fingerprint(nominal) != fingerprint(nominal.with_temperature(310.0))
        assert fingerprint(nominal) != fingerprint(
            nominal.with_corner(ProcessCorner.FAST)
        )

    def test_code_version_change_invalidates(self, monkeypatch):
        key_before = job_key("tag", 1)
        monkeypatch.setattr(jobs_module, "_CODE_VERSION", "0.0.0+deadbeef")
        assert job_key("tag", 1) != key_before

    def test_code_version_includes_source_digest(self):
        version = code_version()
        assert version.startswith(repro.__version__ + "+")
        assert len(version.split("+", 1)[1]) == 16

    def test_array_and_container_support(self):
        array = np.linspace(0.0, 1.0, 7)
        assert fingerprint(array) == fingerprint(array.copy())
        assert fingerprint(array) != fingerprint(array[:-1])
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint((1, 2)) == fingerprint([1, 2])
        assert fingerprint(np.float64(0.1)) == fingerprint(0.1)

    def test_unfingerprintable_value_raises(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            fingerprint(Opaque())


class TestArtifactCache:
    def test_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = job_key("test-artifact", 1)
        artifact = Artifact(
            arrays={"x": np.arange(5.0), "y": np.ones((2, 3))},
            meta={"label": "toy", "count": 5},
        )
        path = cache.put(key, artifact)
        assert path.exists() and path.suffix == ".npz"
        assert cache.has(key)
        loaded = cache.get(key)
        np.testing.assert_array_equal(loaded.arrays["x"], artifact.arrays["x"])
        np.testing.assert_array_equal(loaded.arrays["y"], artifact.arrays["y"])
        assert loaded.meta == artifact.meta
        assert cache.stats.hits == 1 and cache.stats.writes == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get(job_key("nothing")) is None
        assert cache.stats.misses == 1

    def test_corrupt_artifact_recovery(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = job_key("corrupt-me")
        cache.put(key, Artifact(arrays={"x": np.arange(3.0)}))
        path = cache.path_for(key)
        path.write_bytes(b"this is not an npz archive")
        assert cache.get(key) is None
        assert not path.exists(), "corrupt artifact must be deleted"
        assert cache.stats.corrupt_dropped == 1
        # the key is usable again after recovery
        cache.put(key, Artifact(arrays={"x": np.arange(3.0)}))
        np.testing.assert_array_equal(cache.get(key).arrays["x"], np.arange(3.0))

    def test_reserved_meta_name_rejected(self):
        with pytest.raises(ValueError):
            Artifact(arrays={"__meta__": np.zeros(1)})

    def test_invalid_key_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ValueError):
            cache.path_for("../escape")
        with pytest.raises(ValueError):
            cache.path_for("")

    def test_len_size_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for index in range(3):
            cache.put(job_key("bulk", index), Artifact(arrays={"x": np.arange(4.0)}))
        assert len(cache) == 3
        assert cache.size_bytes() > 0
        assert set(cache.keys()) == {job_key("bulk", i) for i in range(3)}
        assert cache.clear() == 3
        assert len(cache) == 0
        assert "artifact cache" in cache.describe()

    def test_default_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"
        assert ArtifactCache().root == tmp_path / "override"


class TestCharacterizationCaching:
    def test_warm_run_skips_reference_solver(self, technology, tmp_path, monkeypatch):
        """A warm cache serves every sweep without constructing the solver."""
        plan = CharacterizationPlan.quick()
        engine = SweepEngine(cache=ArtifactCache(tmp_path))
        cold = characterize(technology, plan, engine=engine)

        class ExplodingSolver:
            def __init__(self, *args, **kwargs):
                raise AssertionError("reference solver touched on a warm cache run")

        import repro.core.characterization as characterization_module

        monkeypatch.setattr(characterization_module, "TransientSolver", ExplodingSolver)
        warm = characterize(technology, plan, engine=engine)
        np.testing.assert_array_equal(
            cold.base.bitline_voltage, warm.base.bitline_voltage
        )
        np.testing.assert_array_equal(
            cold.supply.bitline_voltage, warm.supply.bitline_voltage
        )
        np.testing.assert_array_equal(cold.mismatch.sigma, warm.mismatch.sigma)
        np.testing.assert_array_equal(
            cold.discharge_energy.energy, warm.discharge_energy.energy
        )
        assert engine.stats.cache_hits > 0

    def test_technology_change_misses_cache(self, technology, tmp_path):
        plan = CharacterizationPlan.quick()
        cache = ArtifactCache(tmp_path)
        characterize(technology, plan, engine=SweepEngine(cache=cache))
        writes_before = cache.stats.writes
        assert writes_before > 0
        characterize(
            technology.scaled(vth_nominal=0.36, name="shifted"),
            plan,
            engine=SweepEngine(cache=cache),
        )
        assert cache.stats.writes == 2 * writes_before, (
            "a different technology card must not reuse cached sweeps"
        )

    def test_injected_solver_disables_caching(self, technology, solver, tmp_path):
        plan = CharacterizationPlan.quick()
        cache = ArtifactCache(tmp_path)
        characterize(technology, plan, solver=solver, engine=SweepEngine(cache=cache))
        assert len(cache) == 0
        assert cache.stats.writes == 0
