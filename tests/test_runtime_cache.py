"""Tests for content hashing and the on-disk artifact cache.

Covers the satellite requirements: hash stability across processes,
invalidation when the technology card / operating conditions / plan / code
version change, corrupt-artifact recovery, and warm characterisation runs
that never touch the reference solver.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
import repro.runtime.jobs as jobs_module
from repro.circuits.conditions import OperatingConditions
from repro.circuits.technology import ProcessCorner, tsmc65_like
from repro.core.characterization import CharacterizationPlan, characterize
from repro.runtime import (
    Artifact,
    ArtifactCache,
    SweepEngine,
    code_version,
    default_cache_dir,
    fingerprint,
    job_key,
)

_SUBPROCESS_KEY_SCRIPT = """\
from repro.circuits.technology import tsmc65_like
from repro.core.characterization import CharacterizationPlan
from repro.runtime import job_key
print(job_key("char-base", tsmc65_like(), CharacterizationPlan.quick()))
"""


class TestFingerprint:
    def test_stable_within_process(self):
        technology = tsmc65_like()
        plan = CharacterizationPlan.quick()
        assert fingerprint(technology, plan) == fingerprint(technology, plan)

    def test_stable_across_processes(self):
        """Keys never depend on hash randomisation, id() or repr caprice."""
        local = job_key("char-base", tsmc65_like(), CharacterizationPlan.quick())
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "271828"  # force a different hash seed
        remote = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_KEY_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert remote == local

    def test_technology_change_invalidates(self):
        base = tsmc65_like()
        assert fingerprint(base) != fingerprint(base.scaled(vth_nominal=0.36))
        assert fingerprint(base) != fingerprint(base.scaled(bitline_capacitance=51e-15))

    def test_plan_change_invalidates(self):
        quick = CharacterizationPlan.quick()
        bigger = CharacterizationPlan.quick()
        bigger = type(bigger)(
            times=quick.times,
            wordline_voltages=quick.wordline_voltages,
            supply_voltages=(0.9, 1.0),
            temperatures_celsius=quick.temperatures_celsius,
            mismatch_wordline_voltages=quick.mismatch_wordline_voltages,
            mismatch_samples=quick.mismatch_samples,
        )
        assert fingerprint(quick) != fingerprint(bigger)

    def test_conditions_change_invalidates(self):
        nominal = OperatingConditions(vdd=1.0, temperature=300.15)
        assert fingerprint(nominal) != fingerprint(nominal.with_vdd(1.05))
        assert fingerprint(nominal) != fingerprint(nominal.with_temperature(310.0))
        assert fingerprint(nominal) != fingerprint(
            nominal.with_corner(ProcessCorner.FAST)
        )

    def test_code_version_change_invalidates(self, monkeypatch):
        key_before = job_key("tag", 1)
        monkeypatch.setattr(jobs_module, "_CODE_VERSION", "0.0.0+deadbeef")
        assert job_key("tag", 1) != key_before

    def test_code_version_includes_source_digest(self):
        version = code_version()
        assert version.startswith(repro.__version__ + "+")
        assert len(version.split("+", 1)[1]) == 16

    def test_array_and_container_support(self):
        array = np.linspace(0.0, 1.0, 7)
        assert fingerprint(array) == fingerprint(array.copy())
        assert fingerprint(array) != fingerprint(array[:-1])
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint((1, 2)) == fingerprint([1, 2])
        assert fingerprint(np.float64(0.1)) == fingerprint(0.1)

    def test_unfingerprintable_value_raises(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            fingerprint(Opaque())


class TestArtifactCache:
    def test_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = job_key("test-artifact", 1)
        artifact = Artifact(
            arrays={"x": np.arange(5.0), "y": np.ones((2, 3))},
            meta={"label": "toy", "count": 5},
        )
        path = cache.put(key, artifact)
        assert path.exists() and path.suffix == ".npz"
        assert cache.has(key)
        loaded = cache.get(key)
        np.testing.assert_array_equal(loaded.arrays["x"], artifact.arrays["x"])
        np.testing.assert_array_equal(loaded.arrays["y"], artifact.arrays["y"])
        assert loaded.meta == artifact.meta
        assert cache.stats.hits == 1 and cache.stats.writes == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get(job_key("nothing")) is None
        assert cache.stats.misses == 1

    def test_corrupt_artifact_recovery(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = job_key("corrupt-me")
        cache.put(key, Artifact(arrays={"x": np.arange(3.0)}))
        path = cache.path_for(key)
        path.write_bytes(b"this is not an npz archive")
        assert cache.get(key) is None
        assert not path.exists(), "corrupt artifact must be deleted"
        assert cache.stats.corrupt_dropped == 1
        # the key is usable again after recovery
        cache.put(key, Artifact(arrays={"x": np.arange(3.0)}))
        np.testing.assert_array_equal(cache.get(key).arrays["x"], np.arange(3.0))

    def test_reserved_meta_name_rejected(self):
        with pytest.raises(ValueError):
            Artifact(arrays={"__meta__": np.zeros(1)})

    def test_invalid_key_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ValueError):
            cache.path_for("../escape")
        with pytest.raises(ValueError):
            cache.path_for("")

    def test_len_size_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for index in range(3):
            cache.put(job_key("bulk", index), Artifact(arrays={"x": np.arange(4.0)}))
        assert len(cache) == 3
        assert cache.size_bytes() > 0
        assert set(cache.keys()) == {job_key("bulk", i) for i in range(3)}
        assert cache.clear() == 3
        assert len(cache) == 0
        assert "artifact cache" in cache.describe()

    def test_default_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"
        assert ArtifactCache().root == tmp_path / "override"


class TestCharacterizationCaching:
    def test_warm_run_skips_reference_solver(self, technology, tmp_path, monkeypatch):
        """A warm cache serves every sweep without constructing the solver."""
        plan = CharacterizationPlan.quick()
        engine = SweepEngine(cache=ArtifactCache(tmp_path))
        cold = characterize(technology, plan, engine=engine)

        class ExplodingSolver:
            def __init__(self, *args, **kwargs):
                raise AssertionError("reference solver touched on a warm cache run")

        import repro.core.characterization as characterization_module

        monkeypatch.setattr(characterization_module, "TransientSolver", ExplodingSolver)
        warm = characterize(technology, plan, engine=engine)
        np.testing.assert_array_equal(
            cold.base.bitline_voltage, warm.base.bitline_voltage
        )
        np.testing.assert_array_equal(
            cold.supply.bitline_voltage, warm.supply.bitline_voltage
        )
        np.testing.assert_array_equal(cold.mismatch.sigma, warm.mismatch.sigma)
        np.testing.assert_array_equal(
            cold.discharge_energy.energy, warm.discharge_energy.energy
        )
        assert engine.stats.cache_hits > 0

    def test_technology_change_misses_cache(self, technology, tmp_path):
        plan = CharacterizationPlan.quick()
        cache = ArtifactCache(tmp_path)
        characterize(technology, plan, engine=SweepEngine(cache=cache))
        writes_before = cache.stats.writes
        assert writes_before > 0
        characterize(
            technology.scaled(vth_nominal=0.36, name="shifted"),
            plan,
            engine=SweepEngine(cache=cache),
        )
        assert cache.stats.writes == 2 * writes_before, (
            "a different technology card must not reuse cached sweeps"
        )

    def test_injected_solver_disables_caching(self, technology, solver, tmp_path):
        plan = CharacterizationPlan.quick()
        cache = ArtifactCache(tmp_path)
        characterize(technology, plan, solver=solver, engine=SweepEngine(cache=cache))
        assert len(cache) == 0
        assert cache.stats.writes == 0


class TestFingerprintKeyTypes:
    def test_dict_key_type_collision_regression(self):
        """`{1: x}` and `{"1": x}` are distinct inputs and must not share a
        fingerprint (previously dict keys were stringified)."""
        assert fingerprint({1: "x"}) != fingerprint({"1": "x"})
        assert fingerprint({True: "x"}) != fingerprint({1: "x"})
        assert fingerprint({1.0: "x"}) != fingerprint({1: "x"})
        assert fingerprint({None: "x"}) != fingerprint({"None": "x"})

    def test_dict_key_order_still_canonical(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({2: "x", 10: "y"}) == fingerprint({10: "y", 2: "x"})

    def test_mixed_key_types_are_stable(self):
        mixed = {1: "a", "1": "b", 2.5: "c"}
        assert fingerprint(mixed) == fingerprint(dict(reversed(list(mixed.items()))))


class TestStrayTmpFiles:
    def _plant_stale_tmp(self, cache, age_seconds=7200.0, size=2048):
        shard = cache.root / "ab"
        shard.mkdir(parents=True, exist_ok=True)
        tmp = shard / "crashed-put.npz.tmp"
        tmp.write_bytes(b"\0" * size)
        stale = time.time() - age_seconds
        os.utime(tmp, (stale, stale))
        return tmp

    def test_size_bytes_counts_stray_tmp_files(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(job_key("tmp-sweep", 0), Artifact(arrays={"x": np.arange(4.0)}))
        clean_size = cache.size_bytes()
        tmp = self._plant_stale_tmp(cache)
        assert cache.size_bytes() == clean_size + tmp.stat().st_size

    def test_clear_sweeps_stray_tmp_files(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(job_key("tmp-sweep", 1), Artifact(arrays={"x": np.arange(4.0)}))
        tmp = self._plant_stale_tmp(cache)
        assert cache.clear() == 2, "artifact + stray tmp file"
        assert not tmp.exists()
        assert cache.size_bytes() == 0

    def test_evict_sweeps_stale_tmp_but_not_fresh_ones(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stale = self._plant_stale_tmp(cache)
        fresh = cache.root / "ab" / "in-flight.npz.tmp"
        fresh.write_bytes(b"\0" * 512)  # recent: could be an in-flight put
        cache.evict(max_bytes=10**9)
        assert not stale.exists()
        assert fresh.exists()

    def test_failed_put_cleans_its_tmp_file(self, tmp_path, monkeypatch):
        cache = ArtifactCache(tmp_path)
        monkeypatch.setattr(
            np, "savez", lambda *a, **k: (_ for _ in ()).throw(OSError("disk full"))
        )
        with pytest.raises(OSError):
            cache.put(job_key("fail-put"), Artifact(arrays={"x": np.arange(2.0)}))
        assert list(cache.root.glob("*/*.npz.tmp")) == []


class TestLruEviction:
    def _put(self, cache, tag, index, age_seconds):
        key = job_key(tag, index)
        path = cache.put(key, Artifact(arrays={"x": np.zeros(256)}))
        stamp = time.time() - age_seconds
        os.utime(path, (stamp, stamp))
        return key

    def test_evict_removes_least_recently_used_first(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        oldest = self._put(cache, "lru", 0, age_seconds=300)
        middle = self._put(cache, "lru", 1, age_seconds=200)
        newest = self._put(cache, "lru", 2, age_seconds=100)
        per_artifact = cache.size_bytes() // 3
        removed = cache.evict(max_bytes=2 * per_artifact)
        assert removed == 1
        assert not cache.has(oldest)
        assert cache.has(middle) and cache.has(newest)
        assert cache.stats.evictions == 1

    def test_get_bumps_recency(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        touched = self._put(cache, "bump", 0, age_seconds=300)
        untouched = self._put(cache, "bump", 1, age_seconds=200)
        assert cache.get(touched) is not None  # refreshes atime+mtime
        per_artifact = cache.size_bytes() // 2
        cache.evict(max_bytes=per_artifact)
        assert cache.has(touched), "a cache hit must protect against eviction"
        assert not cache.has(untouched)

    def test_put_auto_evicts_over_max_bytes(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=1)  # every put overflows
        first = self._put(cache, "auto", 0, age_seconds=100)
        second_key = job_key("auto", 1)
        cache.put(second_key, Artifact(arrays={"x": np.zeros(256)}))
        assert cache.has(second_key), "the artifact just written must survive"
        assert not cache.has(first)
        assert cache.stats.evictions == 1

    def test_max_bytes_enforced_after_put(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=6500)
        keys = []
        for index in range(8):
            keys.append(job_key("bound", index))
            path = cache.put(keys[-1], Artifact(arrays={"x": np.zeros(256)}))
            stamp = time.time() - (100 - index)  # strictly increasing recency
            os.utime(path, (stamp, stamp))
            assert cache.size_bytes() <= 6500
        assert cache.has(keys[-1])
        survivors = set(cache.keys())
        assert survivors == set(keys[-len(survivors):]), "eviction is LRU-ordered"

    def test_surviving_artifact_still_serves_warm_runs(self, tmp_path):
        """Eviction of cold artifacts must not invalidate surviving ones."""
        cache = ArtifactCache(tmp_path)
        evicted = self._put(cache, "warm", 0, age_seconds=300)
        survivor = self._put(cache, "warm", 1, age_seconds=100)
        per_artifact = cache.size_bytes() // 2
        cache.evict(max_bytes=per_artifact)
        executions = []

        def producer(value):
            executions.append(value)
            return np.zeros(256)

        engine = SweepEngine(cache=cache)
        job = jobs_module.Job(
            fn=producer,
            args=(1,),
            name="warm",
            key=survivor,
            encode=lambda result: Artifact(arrays={"x": result}),
            decode=lambda artifact: artifact.arrays["x"],
        )
        engine.run_one(job)
        assert executions == [], "surviving artifact must serve the warm run"
        assert not cache.has(evicted)

    def test_evict_without_limit_raises(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ValueError):
            cache.evict()

    def test_negative_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(tmp_path, max_bytes=-1)

    def test_describe_reports_limit(self, tmp_path):
        assert "unbounded" in ArtifactCache(tmp_path).describe()
        assert "limit" in ArtifactCache(tmp_path, max_bytes=10**6).describe()
