"""Unit tests for the reference energy accounting."""

import numpy as np
import pytest

from repro.circuits.conditions import OperatingConditions
from repro.circuits.energy import EnergyBreakdown, EnergyModelReference
from repro.circuits.technology import tsmc65_like


@pytest.fixture(scope="module")
def energy_model():
    return EnergyModelReference(tsmc65_like())


@pytest.fixture(scope="module")
def conditions():
    return OperatingConditions.nominal(tsmc65_like())


class TestWriteEnergy:
    def test_positive_and_reasonable(self, energy_model, conditions):
        energy = energy_model.write_energy(conditions)
        assert 10e-15 < energy < 1e-12

    def test_grows_with_supply(self, energy_model, conditions):
        low = energy_model.write_energy(conditions.with_vdd(0.9))
        high = energy_model.write_energy(conditions.with_vdd(1.1))
        assert high > low

    def test_grows_with_temperature(self, energy_model, conditions):
        cold = energy_model.write_energy(conditions.with_temperature_celsius(0.0))
        hot = energy_model.write_energy(conditions.with_temperature_celsius(75.0))
        assert hot > cold

    def test_word_write_energy_scales_with_bits(self, energy_model, conditions):
        one_bit = energy_model.write_energy(conditions)
        word = energy_model.word_write_energy(conditions, bits=4)
        assert word == pytest.approx(4.0 * one_bit)
        with pytest.raises(ValueError):
            energy_model.word_write_energy(conditions, bits=0)


class TestDischargeEnergy:
    def test_zero_swing_zero_energy(self, energy_model, conditions):
        assert float(energy_model.discharge_energy(0.0, 0.8, conditions)) == pytest.approx(0.0)

    def test_monotone_in_swing(self, energy_model, conditions):
        swings = np.linspace(0.0, 0.5, 6)
        energies = energy_model.discharge_energy(swings, 0.8, conditions)
        assert np.all(np.diff(energies) > 0.0)

    def test_superlinear_in_swing(self, energy_model, conditions):
        """The restore loss adds a quadratic term on top of C*VDD*dV."""
        small = float(energy_model.discharge_energy(0.2, 0.8, conditions))
        large = float(energy_model.discharge_energy(0.4, 0.8, conditions))
        assert large > 2.0 * small

    def test_magnitude_matches_capacitance(self, energy_model, conditions):
        tech = tsmc65_like()
        swing = 0.3
        expected_floor = tech.bitline_capacitance * conditions.vdd * swing
        assert float(energy_model.discharge_energy(swing, 0.8, conditions)) >= expected_floor

    def test_negative_swing_clipped(self, energy_model, conditions):
        assert float(energy_model.discharge_energy(-0.1, 0.8, conditions)) == pytest.approx(0.0)


class TestBreakdown:
    def test_breakdown_totals(self, energy_model, conditions):
        breakdown = energy_model.breakdown(0.3, 0.8, conditions)
        assert isinstance(breakdown, EnergyBreakdown)
        assert breakdown.total == pytest.approx(breakdown.write + breakdown.discharge)
        assert breakdown.discharge == pytest.approx(
            breakdown.wordline + breakdown.precharge_restore + breakdown.sampling
        )
        assert "fJ" in breakdown.describe()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EnergyModelReference(tsmc65_like(), write_overhead=-0.1)
