"""Unit tests for the SRAM array / word / column organisation."""

import numpy as np
import pytest

from repro.circuits.conditions import OperatingConditions
from repro.circuits.sram_array import SramArray, SramWord
from repro.circuits.sram_cell import SramCell
from repro.circuits.technology import tsmc65_like


@pytest.fixture(scope="module")
def array():
    return SramArray(tsmc65_like(), words=8, bits_per_word=4)


class TestSramWord:
    def test_write_read_roundtrip(self):
        cells = [SramCell(tsmc65_like()) for _ in range(4)]
        word = SramWord(cells)
        for value in (0, 1, 7, 15):
            word.write(value)
            assert word.read() == value

    def test_bits_are_lsb_first(self):
        cells = [SramCell(tsmc65_like()) for _ in range(4)]
        word = SramWord(cells)
        word.write(0b1010)
        assert word.bits() == [0, 1, 0, 1]

    def test_out_of_range_value_rejected(self):
        cells = [SramCell(tsmc65_like()) for _ in range(4)]
        word = SramWord(cells)
        with pytest.raises(ValueError):
            word.write(16)
        with pytest.raises(ValueError):
            word.write(-1)


class TestSramArray:
    def test_dimensions(self, array):
        assert array.words == 8
        assert array.bits_per_word == 4

    def test_write_read_words(self, array):
        array.write_word(3, 11)
        assert array.read_word(3) == 11

    def test_write_all_and_dump(self, array):
        values = list(range(8))
        array.write_all(values)
        assert np.array_equal(array.dump(), np.array(values))

    def test_write_all_wrong_length_rejected(self, array):
        with pytest.raises(ValueError):
            array.write_all([1, 2, 3])

    def test_row_column_index_checks(self, array):
        with pytest.raises(IndexError):
            array.word(100)
        with pytest.raises(IndexError):
            array.column(9)
        with pytest.raises(IndexError):
            array.cell(0, 9)

    def test_column_view_shares_cells_with_word_view(self, array):
        array.write_word(2, 0b0101)
        column0 = array.column(0)
        assert column0.cell(2).read() == 1
        column1 = array.column(1)
        assert column1.cell(2).read() == 0

    def test_mismatch_seed_produces_distinct_cells(self):
        array = SramArray(tsmc65_like(), words=4, bits_per_word=4, mismatch_seed=5)
        offsets = {array.cell(r, c).mismatch.vth_access for r in range(4) for c in range(4)}
        assert len(offsets) == 16

    def test_no_mismatch_by_default(self, array):
        assert array.cell(0, 0).mismatch.vth_access == 0.0

    def test_column_discharge_simulation_depends_on_stored_bit(self):
        array = SramArray(tsmc65_like(), words=4, bits_per_word=2)
        conditions = OperatingConditions.nominal(tsmc65_like())
        array.write_word(1, 0b01)
        column0 = array.column(0)
        column1 = array.column(1)
        result_one = column0.simulate_discharge(1, 0.9, 1e-9, conditions)
        result_zero = column1.simulate_discharge(1, 0.9, 1e-9, conditions)
        assert float(result_one.final_voltage) < float(result_zero.final_voltage)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            SramArray(tsmc65_like(), words=0)
