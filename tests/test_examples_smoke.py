"""Smoke tests keeping the runnable examples importable and executable.

Only the fast examples are executed end-to-end (the DNN example trains for
minutes and is covered by the Table II benchmark instead); the point here is
that refactors of the public API cannot silently break the documented entry
points.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_contents(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "design_space_exploration.py",
            "dnn_inference.py",
            "pvt_robustness.py",
            "service_clients.py",
            "cluster_pool.py",
        } <= names

    def test_quickstart_runs(self, capsys):
        module = _load_example("quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "OPTIMA model" in output
        assert "reference circuit" in output

    def test_design_space_exploration_runs(self, capsys):
        module = _load_example("design_space_exploration.py")
        module.main()
        output = capsys.readouterr().out
        assert "Table I reproduction" in output
        assert "speed-up" in output

    def test_dnn_example_is_importable(self):
        module = _load_example("dnn_inference.py")
        assert hasattr(module, "main")

    def test_service_clients_example_runs(self, capsys):
        module = _load_example("service_clients.py")
        module.main()
        output = capsys.readouterr().out
        assert "deduplicated=True" in output, "single-flight must kick in"
        assert "0 jobs executed" in output, "warm run must be all cache hits"
        assert "LRU eviction" in output
