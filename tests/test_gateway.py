"""Tests for the HTTP/SSE gateway (:mod:`repro.gateway`).

Covers the tentpole guarantees:

* REST submit / status / result / cancel against a live in-process
  service, with results **bit-identical** to a direct
  :class:`~repro.service.client.ServiceClient` run;
* SSE progress streaming with a per-sweep monotonic ``seq`` (the SSE
  ``id:``), ``Last-Event-ID`` replay, keepalives, and clean teardown
  when the client disconnects mid-stream;
* content-addressed artifact spill above the ``spill_bytes`` threshold,
  served back via ``GET /v1/artifacts/{digest}``;
* HMAC-signed completion webhooks with bounded retry/backoff, including
  the exhausted-retries failure counter;
* structured errors for every failure path: oversized bodies (413),
  malformed submits (400), unknown sweeps/routes (404), method
  mismatches (405), artifact-store write failures (500), cancelled
  sweeps (409);
* the subprocess end-to-end path: ``python -m repro serve`` + ``python
  -m repro gateway`` + REST + SSE + artifact fetch + webhook + metrics.

Every async scenario runs under ``asyncio.wait_for`` so a hung server
fails the test quickly (the CI job adds an outer ``timeout`` on top).
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import http.server
import json
import os
import re
import subprocess
import sys
import threading

import pytest

import repro
from repro import httpd, obs
from repro.gateway import (
    Gateway,
    GatewayConfig,
    LocalArtifactStore,
    ArtifactStoreError,
    digest_of,
    encode_result,
    match_route,
    sign_payload,
    verify_signature,
    WebhookDeliverer,
)
from repro.gateway.routes import ROUTES, SSE_EVENTS, allowed_methods
from repro.runtime import Job, SweepEngine, SweepSpec
from repro.service import (
    ServiceClient,
    SweepService,
    register_workload,
    unregister_workload,
)

TIMEOUT = 30.0


def run(coro):
    """Run a coroutine with a hard timeout so nothing can hang the suite."""
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


# ----------------------------------------------------------------------
# Toy workloads
# ----------------------------------------------------------------------
_GATE = threading.Event()


def _toy_job(value: int) -> int:
    return value * value


def _toy_workload(params, engine):
    count = int(params.get("n", 4))
    jobs = [Job(fn=_toy_job, args=(i,), name=f"sq[{i}]") for i in range(count)]
    return {"sum": sum(engine.run(SweepSpec("toy", jobs))), "n": count}


def _big_workload(params, engine):
    """A payload far over any small spill threshold."""
    return {"blob": "x" * int(params.get("bytes", 4096))}


def _gated_workload(params, engine):
    if not _GATE.wait(timeout=TIMEOUT):
        raise RuntimeError("test gate never opened")
    return _toy_workload(params, engine)


def _failing_workload(params, engine):
    raise ValueError("deliberate workload failure")


@pytest.fixture
def toy_workloads():
    _GATE.clear()
    register_workload("toy", _toy_workload)
    register_workload("toy-big", _big_workload)
    register_workload("toy-gated", _gated_workload)
    register_workload("toy-failing", _failing_workload)
    try:
        yield
    finally:
        _GATE.set()
        for name in ("toy", "toy-big", "toy-gated", "toy-failing"):
            unregister_workload(name)


# ----------------------------------------------------------------------
# In-process stack + HTTP helpers
# ----------------------------------------------------------------------
@contextlib.asynccontextmanager
async def running_stack(tmp_path, **overrides):
    """One in-process service + one gateway replica in front of it."""
    service = SweepService(engine=SweepEngine(), host="127.0.0.1", port=0)
    host, port = await service.start()
    settings = dict(
        service_host=host,
        service_port=port,
        artifact_root=str(tmp_path / "artifacts"),
        spill_bytes=512,
        webhook_backoff_seconds=0.01,
        webhook_backoff_cap_seconds=0.05,
        sse_keepalive_seconds=0.2,
        watch_backoff_seconds=0.05,
    )
    settings.update(overrides)
    store = settings.pop("store", None)
    gateway = Gateway(GatewayConfig(**settings), store=store)
    await gateway.start()
    try:
        yield service, gateway
    finally:
        await gateway.stop()
        await service.stop()


async def http_request(port, method, path, body=None, headers=()):
    """One request against a local gateway; ``(status, headers, body)``."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    head = [f"{method} {path} HTTP/1.1", "Host: test"]
    if body is not None:
        head.append(f"Content-Length: {len(body)}")
    for name, value in headers:
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + (body or b""))
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    response_headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        response_headers[name.strip().lower()] = value.strip()
    data = await reader.read()  # every gateway response is Connection: close
    writer.close()
    return status, response_headers, data


async def submit_sweep(port, workload, params=None, **extra):
    document = {"workload": workload, "params": params or {}}
    document.update(extra)
    status, _, body = await http_request(
        port, "POST", "/v1/sweeps", body=json.dumps(document).encode()
    )
    assert status == 202, body
    return json.loads(body)


async def wait_terminal(port, sweep_id, deadline=TIMEOUT):
    loop = asyncio.get_running_loop()
    end = loop.time() + deadline
    while True:
        status, _, body = await http_request(port, "GET", f"/v1/sweeps/{sweep_id}")
        assert status == 200
        document = json.loads(body)
        if document["state"] != "running":
            return document
        if loop.time() > end:
            raise AssertionError(f"sweep {sweep_id} never finished: {document}")
        await asyncio.sleep(0.02)


async def open_sse(port, sweep_id, headers=()):
    """Open the event stream; returns ``(reader, writer)`` past the head."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    head = [f"GET /v1/sweeps/{sweep_id}/events HTTP/1.1", "Host: test"]
    for name, value in headers:
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode())
    await writer.drain()
    status_line = await reader.readline()
    assert b" 200 " in status_line, status_line
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        assert line, "connection closed inside SSE response head"
    return reader, writer


async def read_sse_frames(reader, until="done"):
    """Collect ``(id, event, data)`` frames until the ``until`` event."""
    frames = []
    event_id = event = data = None
    while True:
        raw = await reader.readline()
        if raw == b"":
            return frames
        line = raw.decode().rstrip("\r\n")
        if line.startswith("id: "):
            event_id = int(line[4:])
        elif line.startswith("event: "):
            event = line[7:]
        elif line.startswith("data: "):
            data = json.loads(line[6:])
        elif line == "" and event is not None:
            frames.append((event_id, event, data))
            if event == until:
                return frames
            event_id = event = data = None


# ----------------------------------------------------------------------
# Shared HTTP plumbing (repro.httpd)
# ----------------------------------------------------------------------
class TestHttpd:
    def _parse(self, wire, **kwargs):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(wire)
            reader.feed_eof()
            return await httpd.read_request(reader, **kwargs)

        return run(scenario())

    def test_parses_request_line_headers_and_body(self):
        request = self._parse(
            b"POST /v1/sweeps?x=1 HTTP/1.1\r\nHost: h\r\n"
            b"Content-Length: 2\r\n\r\nhi"
        )
        assert (request.method, request.path, request.query) == (
            "POST", "/v1/sweeps", "x=1",
        )
        assert request.headers["host"] == "h"
        assert request.body == b"hi"

    def test_clean_eof_returns_none(self):
        assert self._parse(b"") is None

    def test_oversized_body_is_413_before_reading(self):
        with pytest.raises(httpd.HttpError) as info:
            self._parse(
                b"POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n",
                max_body_bytes=10,
            )
        assert info.value.status == 413

    def test_malformed_request_line_is_400(self):
        with pytest.raises(httpd.HttpError) as info:
            self._parse(b"what even\r\n\r\n")
        assert info.value.status == 400

    def test_bad_json_body_raises_400(self):
        request = httpd.HttpRequest("POST", "/", "", "HTTP/1.1", {}, b"{nope")
        with pytest.raises(httpd.HttpError) as info:
            request.json()
        assert info.value.status == 400

    def test_error_body_is_structured(self):
        document = json.loads(httpd.error_body(404, "gone", code="not-found"))
        assert document == {"code": "not-found", "error": "gone", "status": 404}

    def test_responses_close_the_connection(self):
        assert b"Connection: close" in httpd.render_response(200, b"x")


# ----------------------------------------------------------------------
# Route table
# ----------------------------------------------------------------------
class TestRoutes:
    def test_placeholders_resolve(self):
        route, params = match_route("GET", "/v1/sweeps/sw-1/result")
        assert route == "GET /v1/sweeps/{id}/result"
        assert params == {"id": "sw-1"}

    def test_unknown_path_and_method(self):
        assert match_route("GET", "/v1/nope") is None
        assert match_route("PUT", "/v1/sweeps") is None

    def test_allowed_methods_for_405(self):
        assert set(allowed_methods("/v1/sweeps/abc")) == {"GET", "DELETE"}

    def test_vocabulary_shape(self):
        assert len(ROUTES) == len(set(ROUTES))
        assert set(SSE_EVENTS) == {"snapshot", "progress", "obs", "done"}


# ----------------------------------------------------------------------
# Artifact store
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_put_get_roundtrip_is_content_addressed(self, tmp_path):
        store = LocalArtifactStore(str(tmp_path / "store"))
        data = encode_result({"rows": list(range(50))})
        digest = store.put(data)
        assert digest == hashlib.sha256(data).hexdigest() == digest_of(data)
        assert store.get(digest) == data
        assert store.put(data) == digest  # idempotent

    def test_missing_artifact_raises_keyerror(self, tmp_path):
        store = LocalArtifactStore(str(tmp_path / "store"))
        with pytest.raises(KeyError):
            store.get("0" * 64)
        with pytest.raises(KeyError):
            store.get("not-a-digest")

    def test_write_failure_surfaces_as_store_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the store root should be")
        store = LocalArtifactStore(str(blocker))
        with pytest.raises(ArtifactStoreError):
            store.put(b"payload")

    def test_encoding_is_deterministic(self):
        assert encode_result({"b": 1, "a": 2}) == encode_result({"a": 2, "b": 1})


# ----------------------------------------------------------------------
# Webhooks
# ----------------------------------------------------------------------
class _WebhookReceiver:
    """In-loop asyncio receiver capturing deliveries; scriptable statuses."""

    def __init__(self, statuses=(200,)):
        self.statuses = list(statuses)
        self.deliveries = []
        self._server = None
        self.port = 0

    async def __aenter__(self):
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc_info):
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer):
        request = await httpd.read_request(reader)
        if request is not None:
            self.deliveries.append(request)
        status = self.statuses.pop(0) if len(self.statuses) > 1 else self.statuses[0]
        writer.write(httpd.json_response(status, {"ok": status < 300}))
        await writer.drain()
        writer.close()


class TestWebhooks:
    def test_sign_and_verify(self):
        body = b'{"state": "completed"}'
        signature = sign_payload(body, "secret")
        assert verify_signature(body, "secret", signature)
        assert not verify_signature(b'{"state": "failed"}', "secret", signature)
        assert not verify_signature(body, "other-secret", signature)

    def test_delivery_carries_valid_signature(self):
        async def scenario():
            async with _WebhookReceiver() as receiver:
                deliverer = WebhookDeliverer("s3cret", attempts=2,
                                             backoff_seconds=0.01)
                body = encode_result({"state": "completed"})
                assert await deliverer.deliver(
                    f"http://127.0.0.1:{receiver.port}/hook", body
                )
                (request,) = receiver.deliveries
                assert request.body == body
                assert verify_signature(
                    request.body, "s3cret", request.headers["x-repro-signature"]
                )
                assert request.headers["x-repro-delivery-attempt"] == "1"

        run(scenario())

    def test_retry_then_success_counts_attempts(self):
        async def scenario():
            async with _WebhookReceiver(statuses=[500, 200]) as receiver:
                deliverer = WebhookDeliverer("k", attempts=3, backoff_seconds=0.01)
                assert await deliverer.deliver(
                    f"http://127.0.0.1:{receiver.port}/hook", b"{}"
                )
                attempts = [
                    request.headers["x-repro-delivery-attempt"]
                    for request in receiver.deliveries
                ]
                assert attempts == ["1", "2"]

        run(scenario())

    def test_down_endpoint_exhausts_retries_and_counts_failure(self):
        deliveries = obs.counter(
            "repro_gateway_webhook_deliveries_total", labels=("outcome",)
        )
        attempts_counter = obs.counter("repro_gateway_webhook_attempts_total")
        exhausted_before = deliveries.value(outcome="exhausted")
        attempts_before = attempts_counter.value()

        async def scenario():
            # Bind-then-close: the port is now reliably refused.
            probe = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            deliverer = WebhookDeliverer("k", attempts=3, backoff_seconds=0.01)
            assert not await deliverer.deliver(
                f"http://127.0.0.1:{port}/hook", b"{}"
            )

        run(scenario())
        assert deliveries.value(outcome="exhausted") == exhausted_before + 1
        assert attempts_counter.value() == attempts_before + 3

    def test_non_http_url_is_rejected_without_dialling(self):
        async def scenario():
            deliverer = WebhookDeliverer("k", attempts=3)
            return await deliverer.deliver("ftp://example/hook", b"{}")

        assert run(scenario()) is False


# ----------------------------------------------------------------------
# Gateway REST semantics (in-process)
# ----------------------------------------------------------------------
class TestGatewayRest:
    def test_submit_status_result_inline_bit_identical(self, tmp_path, toy_workloads):
        async def scenario():
            async with running_stack(tmp_path) as (service, gateway):
                accepted = await submit_sweep(gateway.port, "toy", {"n": 5})
                assert accepted["state"] == "running"
                assert accepted["id"].startswith("sw-")
                final = await wait_terminal(gateway.port, accepted["id"])
                assert final["state"] == "completed"
                assert final["key"]
                assert final["trace"]
                status, headers, body = await http_request(
                    gateway.port, "GET", f"/v1/sweeps/{accepted['id']}/result"
                )
                assert status == 200
                # Bit-identical to a direct ServiceClient run of the same
                # request (the service single-flights/caches nothing here:
                # toy results are deterministic).
                async with ServiceClient(*service.address) as client:
                    direct = await client.submit("toy", {"n": 5})
                assert body == encode_result(direct.payload)

        run(scenario())

    def test_result_while_running_is_202(self, tmp_path, toy_workloads):
        async def scenario():
            async with running_stack(tmp_path) as (_, gateway):
                accepted = await submit_sweep(gateway.port, "toy-gated", {"n": 2})
                status, _, body = await http_request(
                    gateway.port, "GET", f"/v1/sweeps/{accepted['id']}/result"
                )
                assert status == 202
                assert json.loads(body)["state"] == "running"
                _GATE.set()
                await wait_terminal(gateway.port, accepted["id"])

        run(scenario())

    def test_failed_workload_surfaces_structured_500(self, tmp_path, toy_workloads):
        async def scenario():
            async with running_stack(tmp_path) as (_, gateway):
                accepted = await submit_sweep(gateway.port, "toy-failing")
                final = await wait_terminal(gateway.port, accepted["id"])
                assert final["state"] == "failed"
                status, _, body = await http_request(
                    gateway.port, "GET", f"/v1/sweeps/{accepted['id']}/result"
                )
                document = json.loads(body)
                assert status == 500
                assert document["status"] == 500
                assert "deliberate workload failure" in document["error"]

        run(scenario())

    def test_cancel_via_delete(self, tmp_path, toy_workloads):
        async def scenario():
            async with running_stack(tmp_path) as (_, gateway):
                accepted = await submit_sweep(gateway.port, "toy-gated")
                status, _, body = await http_request(
                    gateway.port, "DELETE", f"/v1/sweeps/{accepted['id']}"
                )
                assert status == 202
                assert json.loads(body)["state"] == "cancelling"
                # The cancel op answers at once even though the workload
                # thread is still parked on the gate — wait for the
                # terminal state *before* opening it so the cancel cannot
                # race a normal completion.
                final = await wait_terminal(gateway.port, accepted["id"])
                assert final["state"] == "cancelled"
                _GATE.set()  # let the worker thread drain
                status, _, body = await http_request(
                    gateway.port, "GET", f"/v1/sweeps/{accepted['id']}/result"
                )
                assert status == 409
                assert json.loads(body)["code"] == "cancelled"
                # A second DELETE conflicts: the sweep is already terminal.
                status, _, _ = await http_request(
                    gateway.port, "DELETE", f"/v1/sweeps/{accepted['id']}"
                )
                assert status == 409

        run(scenario())

    def test_error_paths_are_structured(self, tmp_path, toy_workloads):
        async def scenario():
            async with running_stack(tmp_path, max_body_bytes=200) as (_, gateway):
                port = gateway.port
                # 413: oversized body refused before it is read.
                status, _, body = await http_request(
                    port, "POST", "/v1/sweeps", body=b"x" * 1000
                )
                assert status == 413
                assert json.loads(body)["status"] == 413
                # 400: not JSON / missing workload / wrong types.
                status, _, _ = await http_request(
                    port, "POST", "/v1/sweeps", body=b"{nope"
                )
                assert status == 400
                status, _, body = await http_request(
                    port, "POST", "/v1/sweeps", body=b'{"params": {}}'
                )
                assert status == 400
                assert "workload" in json.loads(body)["error"]
                # 404: unknown sweep, unknown artifact, unknown route.
                for path in ("/v1/sweeps/sw-nope", "/v1/artifacts/" + "0" * 64,
                             "/v1/nope"):
                    status, _, _ = await http_request(port, "GET", path)
                    assert status == 404, path
                # 405: known path, wrong method, Allow header present.
                status, headers, _ = await http_request(
                    port, "PUT", "/v1/sweeps/sw-1"
                )
                assert status == 405
                assert set(headers["allow"].split(", ")) == {"GET", "DELETE"}
                # healthz for load balancers.
                status, _, body = await http_request(port, "GET", "/healthz")
                assert status == 200
                assert json.loads(body)["status"] == "ok"

        run(scenario())

    def test_unknown_workload_fails_the_sweep(self, tmp_path, toy_workloads):
        async def scenario():
            async with running_stack(tmp_path) as (_, gateway):
                accepted = await submit_sweep(gateway.port, "no-such-workload")
                final = await wait_terminal(gateway.port, accepted["id"])
                assert final["state"] == "failed"
                assert final["error_code"] == "bad-request"

        run(scenario())


# ----------------------------------------------------------------------
# Artifact spill (in-process)
# ----------------------------------------------------------------------
class TestArtifactSpill:
    def test_large_result_spills_and_fetches_bit_identical(
        self, tmp_path, toy_workloads
    ):
        async def scenario():
            async with running_stack(tmp_path, spill_bytes=256) as (
                service, gateway,
            ):
                accepted = await submit_sweep(
                    gateway.port, "toy-big", {"bytes": 4096}
                )
                final = await wait_terminal(gateway.port, accepted["id"])
                assert final["state"] == "completed"
                digest = final["artifact"]
                assert re.fullmatch(r"[0-9a-f]{64}", digest)
                # The result endpoint redirects to the artifact.
                status, headers, _ = await http_request(
                    gateway.port, "GET", f"/v1/sweeps/{accepted['id']}/result"
                )
                assert status == 307
                assert headers["location"] == f"/v1/artifacts/{digest}"
                # The artifact bytes are the canonical result encoding,
                # bit-identical to a direct ServiceClient run.
                status, headers, data = await http_request(
                    gateway.port, "GET", headers["location"]
                )
                assert status == 200
                assert headers["x-repro-digest"] == digest
                assert hashlib.sha256(data).hexdigest() == digest
                async with ServiceClient(*service.address) as client:
                    direct = await client.submit("toy-big", {"bytes": 4096})
                assert data == encode_result(direct.payload)

        run(scenario())

    def test_small_result_stays_inline(self, tmp_path, toy_workloads):
        async def scenario():
            async with running_stack(tmp_path, spill_bytes=100_000) as (_, gateway):
                accepted = await submit_sweep(gateway.port, "toy", {"n": 3})
                final = await wait_terminal(gateway.port, accepted["id"])
                assert final["state"] == "completed"
                assert "artifact" not in final

        run(scenario())

    def test_store_write_failure_is_a_structured_error(
        self, tmp_path, toy_workloads
    ):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the store root should be")

        async def scenario():
            async with running_stack(
                tmp_path, spill_bytes=16, artifact_root=str(blocker)
            ) as (_, gateway):
                accepted = await submit_sweep(
                    gateway.port, "toy-big", {"bytes": 2048}
                )
                final = await wait_terminal(gateway.port, accepted["id"])
                assert final["state"] == "failed"
                assert final["error_code"] == "artifact-store"
                status, _, body = await http_request(
                    gateway.port, "GET", f"/v1/sweeps/{accepted['id']}/result"
                )
                document = json.loads(body)
                assert status == 500
                assert document["code"] == "artifact-store"

        run(scenario())


# ----------------------------------------------------------------------
# SSE streaming (in-process)
# ----------------------------------------------------------------------
class TestSse:
    def test_progress_stream_has_monotonic_seq_and_terminal_done(
        self, tmp_path, toy_workloads
    ):
        async def scenario():
            async with running_stack(tmp_path) as (_, gateway):
                accepted = await submit_sweep(gateway.port, "toy-gated", {"n": 6})
                reader, writer = await open_sse(gateway.port, accepted["id"])
                _GATE.set()
                frames = await read_sse_frames(reader)
                writer.close()
                ids = [frame[0] for frame in frames]
                events = [frame[1] for frame in frames]
                assert events[0] == "snapshot"
                assert events[-1] == "done"
                assert "progress" in events
                assert ids == sorted(ids)
                assert len(set(ids)) == len(ids), "seq must be strictly monotonic"
                progress = [frame[2] for frame in frames if frame[1] == "progress"]
                assert progress[-1]["done"] == progress[-1]["total"] == 6
                done = frames[-1][2]
                assert done["state"] == "completed"
                # Bridged obs events preserve their bus seq in data.
                bridged = [frame[2] for frame in frames if frame[1] == "obs"]
                for first, second in zip(bridged, bridged[1:]):
                    assert first["seq"] < second["seq"]

        run(scenario())

    def test_watch_bridge_delivers_obs_events(self, tmp_path, toy_workloads):
        async def scenario():
            async with running_stack(tmp_path) as (_, gateway):
                accepted = await submit_sweep(gateway.port, "toy-gated", {"n": 4})
                # Wait for the accept to land so the trace is indexed and
                # the watch bridge can attribute events to this sweep.
                while not gateway._by_trace:
                    await asyncio.sleep(0.01)
                reader, writer = await open_sse(gateway.port, accepted["id"])
                _GATE.set()
                frames = await read_sse_frames(reader)
                writer.close()
                bridged = [frame[2] for frame in frames if frame[1] == "obs"]
                assert bridged, "watch bridge delivered no obs events"
                trace = frames[-1][2]["trace"]
                assert all(event.get("trace") == trace for event in bridged)
                assert {event["type"] for event in bridged} <= set(obs.EVENT_TYPES)

        run(scenario())

    def test_late_subscriber_gets_snapshot_then_replay_cursor_works(
        self, tmp_path, toy_workloads
    ):
        async def scenario():
            async with running_stack(tmp_path) as (_, gateway):
                accepted = await submit_sweep(gateway.port, "toy", {"n": 4})
                await wait_terminal(gateway.port, accepted["id"])
                # Fresh subscriber on a finished sweep: one snapshot frame
                # carrying the terminal state, then end-of-stream.
                reader, writer = await open_sse(gateway.port, accepted["id"])
                frames = await read_sse_frames(reader, until="snapshot")
                writer.close()
                assert frames[-1][1] == "snapshot"
                assert frames[-1][2]["state"] == "completed"
                # Reconnect with Last-Event-ID: 0 replays the full history
                # (progress and the terminal done) in seq order.
                reader, writer = await open_sse(
                    gateway.port, accepted["id"],
                    headers=(("Last-Event-ID", "0"),),
                )
                replay = await read_sse_frames(reader)
                writer.close()
                assert replay[-1][1] == "done"
                ids = [frame[0] for frame in replay]
                assert ids == sorted(ids) and len(set(ids)) == len(ids)
                assert any(frame[1] == "progress" for frame in replay)

        run(scenario())

    def test_client_disconnect_mid_stream_cancels_cleanly(
        self, tmp_path, toy_workloads
    ):
        streams = obs.counter(
            "repro_gateway_sse_streams_total", labels=("outcome",)
        )
        disconnected_before = streams.value(outcome="disconnected")

        async def scenario():
            async with running_stack(tmp_path) as (_, gateway):
                accepted = await submit_sweep(gateway.port, "toy-gated")
                reader, writer = await open_sse(gateway.port, accepted["id"])
                record = gateway._sweeps[accepted["id"]]
                while not record.subscribers:
                    await asyncio.sleep(0.01)
                writer.close()  # hang up mid-stream
                deadline = asyncio.get_running_loop().time() + TIMEOUT
                while record.subscribers:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.02)
                _GATE.set()
                await wait_terminal(gateway.port, accepted["id"])

        run(scenario())
        streams_after = streams.value(outcome="disconnected")
        assert streams_after == disconnected_before + 1


# ----------------------------------------------------------------------
# Completion webhooks through the gateway (in-process)
# ----------------------------------------------------------------------
class TestGatewayWebhooks:
    def test_completion_webhook_is_signed_and_delivered(
        self, tmp_path, toy_workloads
    ):
        async def scenario():
            async with _WebhookReceiver() as receiver:
                async with running_stack(
                    tmp_path, webhook_secret="hook-secret"
                ) as (_, gateway):
                    accepted = await submit_sweep(
                        gateway.port, "toy", {"n": 3},
                        webhook_url=f"http://127.0.0.1:{receiver.port}/done",
                    )
                    final = await wait_terminal(gateway.port, accepted["id"])
                    assert final["state"] == "completed"
                    record = gateway._sweeps[accepted["id"]]
                    deadline = asyncio.get_running_loop().time() + TIMEOUT
                    while record.webhook_delivered is None:
                        assert asyncio.get_running_loop().time() < deadline
                        await asyncio.sleep(0.02)
                    assert record.webhook_delivered is True
                    (request,) = receiver.deliveries
                    document = json.loads(request.body)
                    assert document["id"] == accepted["id"]
                    assert document["state"] == "completed"
                    assert verify_signature(
                        request.body, "hook-secret",
                        request.headers["x-repro-signature"],
                    )

        run(scenario())

    def test_webhook_down_exhausts_retries(self, tmp_path, toy_workloads):
        deliveries = obs.counter(
            "repro_gateway_webhook_deliveries_total", labels=("outcome",)
        )
        exhausted_before = deliveries.value(outcome="exhausted")

        async def scenario():
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            async with running_stack(tmp_path, webhook_attempts=2) as (_, gateway):
                accepted = await submit_sweep(
                    gateway.port, "toy",
                    webhook_url=f"http://127.0.0.1:{port}/gone",
                )
                record = gateway._sweeps[accepted["id"]]
                await wait_terminal(gateway.port, accepted["id"])
                deadline = asyncio.get_running_loop().time() + TIMEOUT
                while record.webhook_delivered is None:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.02)
                assert record.webhook_delivered is False

        run(scenario())
        assert deliveries.value(outcome="exhausted") == exhausted_before + 1


# ----------------------------------------------------------------------
# The eventsim servable workload through the gateway (in-process)
# ----------------------------------------------------------------------
class TestEventsimWorkload:
    def test_eventsim_end_to_end_matches_direct_client(self, tmp_path):
        async def scenario():
            async with running_stack(tmp_path) as (service, gateway):
                accepted = await submit_sweep(
                    gateway.port, "eventsim",
                    {"fast": True, "pairs": [[1, 2], [3, 4], [15, 15]],
                     "shards": 2},
                )
                final = await wait_terminal(gateway.port, accepted["id"], TIMEOUT * 4)
                assert final["state"] == "completed"
                status, _, body = await http_request(
                    gateway.port, "GET", f"/v1/sweeps/{accepted['id']}/result"
                )
                assert status == 200
                payload = json.loads(body)
                assert payload["command"] == "eventsim"
                assert payload["matches_model"] is True
                assert payload["pairs"] == 3
                assert [r["expected"] for r in payload["results"]] == [2, 12, 225]
                async with ServiceClient(*service.address) as client:
                    direct = await client.submit(
                        "eventsim",
                        {"fast": True, "pairs": [[1, 2], [3, 4], [15, 15]],
                         "shards": 2},
                    )
                assert body == encode_result(direct.payload)

        asyncio.run(asyncio.wait_for(scenario(), TIMEOUT * 8))


# ----------------------------------------------------------------------
# Subprocess end-to-end: serve + gateway + REST/SSE/artifact/webhook
# ----------------------------------------------------------------------
class _ThreadedWebhookSink(http.server.ThreadingHTTPServer):
    daemon_threads = True


class TestSubprocessEndToEnd:
    def _spawn(self, argv, env):
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )

    def test_rest_sse_artifact_webhook_end_to_end(self, tmp_path):
        """The acceptance criterion, driven over real sockets: REST submit
        -> ordered SSE -> spilled artifact download -> signed webhook,
        with the downloaded bytes bit-identical to a direct ServiceClient
        run and repro_gateway_* metrics on the Prometheus endpoint."""
        import urllib.request

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"

        received = []

        class Hook(http.server.BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers["Content-Length"])
                received.append(
                    (self.rfile.read(length),
                     self.headers["X-Repro-Signature"])
                )
                self.send_response(200)
                self.send_header("Content-Length", "0")
                self.end_headers()

            def log_message(self, *args):
                pass

        sink = _ThreadedWebhookSink(("127.0.0.1", 0), Hook)
        sink_thread = threading.Thread(target=sink.serve_forever, daemon=True)
        sink_thread.start()

        serve = self._spawn(
            ["serve", "--port", "0", "--cache-dir", str(tmp_path / "cache")],
            env,
        )
        gateway = None
        try:
            banner = serve.stdout.readline()
            service_port = re.search(r":(\d+) ", banner).group(1)
            gateway = self._spawn(
                [
                    "gateway", "--service", f"127.0.0.1:{service_port}",
                    "--port", "0",
                    "--artifact-root", str(tmp_path / "store"),
                    "--spill-bytes", "64",
                    "--webhook-secret", "e2e-secret",
                    "--metrics-port", "0",
                ],
                env,
            )
            gateway_banner = gateway.stdout.readline()
            gateway_port = int(re.search(r":(\d+) ", gateway_banner).group(1))
            metrics_banner = gateway.stdout.readline()
            metrics_port = int(re.search(r":(\d+)/metrics", metrics_banner).group(1))
            base = f"http://127.0.0.1:{gateway_port}"

            # REST submit with a completion webhook registered.
            body = json.dumps({
                "workload": "characterize",
                "params": {"fast": True},
                "webhook_url":
                    f"http://127.0.0.1:{sink.server_address[1]}/hook",
            }).encode()
            request = urllib.request.Request(
                f"{base}/v1/sweeps", data=body,
                headers={"Content-Type": "application/json"},
            )
            accepted = json.load(urllib.request.urlopen(request, timeout=TIMEOUT))
            sweep_id = accepted["id"]

            # SSE stream until the terminal frame; ids strictly monotonic.
            stream = urllib.request.urlopen(
                f"{base}/v1/sweeps/{sweep_id}/events", timeout=TIMEOUT * 4
            )
            ids, events, terminal = [], [], None
            event_id = event_name = data = None
            while True:
                line = stream.readline().decode().rstrip("\r\n")
                if line.startswith("id: "):
                    event_id = int(line[4:])
                elif line.startswith("event: "):
                    event_name = line[7:]
                elif line.startswith("data: "):
                    data = json.loads(line[6:])
                elif line == "" and event_name is not None:
                    ids.append(event_id)
                    events.append(event_name)
                    if event_name == "done":
                        terminal = data
                        break
                    event_id = event_name = data = None
            stream.close()
            assert ids == sorted(ids) and len(set(ids)) == len(ids)
            assert "progress" in events
            assert terminal["state"] == "completed"

            # The fast characterisation payload is far over 64 bytes, so
            # the result redirected to a content-addressed artifact.
            digest = terminal["artifact"]
            result = urllib.request.urlopen(
                f"{base}/v1/sweeps/{sweep_id}/result", timeout=TIMEOUT
            )
            downloaded = result.read()
            assert result.url.endswith(f"/v1/artifacts/{digest}")
            assert hashlib.sha256(downloaded).hexdigest() == digest

            # Bit-identical to the direct NDJSON-TCP client.
            from repro.service import run_sweep

            direct = run_sweep(
                "127.0.0.1", int(service_port), "characterize",
                {"fast": True}, timeout=TIMEOUT * 4, connect_timeout=TIMEOUT,
            )
            assert downloaded == encode_result(direct.payload)

            # Signed webhook arrived.
            for _ in range(int(TIMEOUT / 0.1)):
                if received:
                    break
                threading.Event().wait(0.1)
            assert received, "webhook never arrived"
            hook_body, signature = received[0]
            assert verify_signature(hook_body, "e2e-secret", signature)
            assert json.loads(hook_body)["id"] == sweep_id

            # Gateway metrics on the Prometheus endpoint.
            exposition = urllib.request.urlopen(
                f"http://127.0.0.1:{metrics_port}/metrics", timeout=TIMEOUT
            ).read().decode()
            for name in (
                "repro_gateway_requests_total",
                "repro_gateway_sweeps_total",
                "repro_gateway_sse_frames_total",
                "repro_gateway_artifact_spills_total",
                "repro_gateway_webhook_deliveries_total",
            ):
                assert name in exposition, name
        finally:
            if gateway is not None:
                gateway.terminate()
                gateway.wait(timeout=15)
            serve.terminate()
            serve.wait(timeout=15)
            sink.shutdown()
            sink.server_close()
