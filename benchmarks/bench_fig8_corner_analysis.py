"""Paper Fig. 8 — robustness analysis of the selected corners.

Left column: average multiplication result and analogue standard deviation
versus the expected result.  Right column: influence of supply-voltage and
temperature variations on the average error.  The benchmark regenerates both
for the fom / power / variation corners and asserts the paper's qualitative
findings: the fom corner is the least susceptible to voltage and temperature
variations, the variation corner is the most robust against mismatch at large
discharges but performs worst for small operands.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.pvt import analyze_corner_robustness


def test_fig8_corner_robustness(benchmark, suite, selected_corners):
    def run_all():
        return {
            name: analyze_corner_robustness(suite, config)
            for name, config in selected_corners.items()
        }

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    fom = reports["fom"]
    power = reports["power"]
    variation = reports["variation"]

    # Left panels: transfer curves are monotone overall (correlation with the
    # ideal product is high) and the variation corner deviates the most.
    for report in reports.values():
        assert report.transfer.expected.shape == report.transfer.mean_result.shape
    assert variation.transfer.max_deviation() > fom.transfer.max_deviation()

    # The variation corner is the least impacted by mismatch at the maximum
    # discharge (its defining property) ...
    assert variation.transfer.result_sigma_lsb[-1] <= power.transfer.result_sigma_lsb[-1]
    # ... but performs notably worse than fom for small operand values.
    assert variation.small_operand_error_lsb > fom.small_operand_error_lsb

    # Right panels: the fom corner is the least susceptible to voltage and
    # temperature variations among the selected corners.
    assert max(fom.supply_sweep.mean_error_lsb) <= max(variation.supply_sweep.mean_error_lsb)
    assert max(fom.temperature_sweep.mean_error_lsb) <= max(
        variation.temperature_sweep.mean_error_lsb
    )
    # Off-nominal conditions increase the error for every corner.
    for report in reports.values():
        assert max(report.supply_sweep.mean_error_lsb) >= report.nominal_error_lsb - 1e-9
        assert max(report.temperature_sweep.mean_error_lsb) >= report.nominal_error_lsb - 1e-9

    lines = ["Fig. 8: robustness of the selected corners"]
    for name, report in reports.items():
        lines.append(f"  {name}: {report.describe()}")
        lines.append(
            f"      small-operand error {report.small_operand_error_lsb:.2f} LSB, "
            f"max transfer deviation {report.transfer.max_deviation():.1f} LSB, "
            f"sigma at max result {report.transfer.result_sigma_lsb[-1]:.2f} LSB"
        )
    print("\n" + "\n".join(lines))
    write_result("fig8_corner_robustness", "\n".join(lines))
