"""Service-layer benchmark: request overhead and single-flight fan-out.

Two measurements back the `repro.service` design claims:

* **round-trip overhead** — a trivial workload submitted through the full
  TCP + JSON + thread-pool path must cost no more than a few milliseconds
  over calling the engine directly, so serving is viable even for quick
  sweeps.
* **single-flight fan-out** — N concurrent clients submitting the *same*
  sweep must finish in roughly the time of one execution (the sweep runs
  once and fans out), demonstrably cheaper than N sequential distinct
  executions of the same cost.

Results are printed and written to
``benchmarks/results/service_roundtrip.json``.
"""

from __future__ import annotations

import asyncio
import json
import time

from conftest import RESULTS_DIR

from repro.runtime import ArtifactCache, Job, SweepEngine, SweepSpec
from repro.service import ServiceClient, SweepService, register_workload, unregister_workload

_JOB_SECONDS = 0.01
_FAN_OUT_CLIENTS = 8
_JOBS_PER_SWEEP = 10


def _timed_job(value: int) -> int:
    time.sleep(_JOB_SECONDS)
    return value * value


def _bench_workload(params, engine):
    tag = params.get("tag", 0)
    jobs = [
        Job(fn=_timed_job, args=(i,), name=f"bench[{tag}][{i}]")
        for i in range(_JOBS_PER_SWEEP)
    ]
    return {"sum": sum(engine.run(SweepSpec(f"bench-{tag}", jobs)))}


def _noop_workload(params, engine):
    return {"ok": True}


async def _measure(tmp_path) -> dict:
    engine = SweepEngine(cache=ArtifactCache(tmp_path / "cache"))
    service = SweepService(engine, max_workers=_FAN_OUT_CLIENTS)
    host, port = await service.start()
    try:
        # --- round-trip overhead on a no-op workload --------------------
        async with ServiceClient(host, port) as client:
            await client.submit("bench-noop")  # connection warm-up
            start = time.perf_counter()
            rounds = 50
            for _ in range(rounds):
                await client.submit("bench-noop")
            roundtrip_ms = 1e3 * (time.perf_counter() - start) / rounds

        # --- N concurrent identical requests (single-flight) ------------
        async def submit(tag):
            async with ServiceClient(host, port) as client:
                return await client.submit("bench-sweep", {"tag": tag})

        executed_before = engine.stats.jobs_executed
        start = time.perf_counter()
        shared = await asyncio.gather(*(submit(0) for _ in range(_FAN_OUT_CLIENTS)))
        shared_seconds = time.perf_counter() - start
        shared_executed = engine.stats.jobs_executed - executed_before

        # --- N sequential distinct requests (the honest baseline) -------
        executed_before = engine.stats.jobs_executed
        start = time.perf_counter()
        for tag in range(1, _FAN_OUT_CLIENTS + 1):
            await submit(tag)
        distinct_seconds = time.perf_counter() - start
        distinct_executed = engine.stats.jobs_executed - executed_before
    finally:
        await service.stop()

    return {
        "roundtrip_ms": roundtrip_ms,
        "clients": _FAN_OUT_CLIENTS,
        "jobs_per_sweep": _JOBS_PER_SWEEP,
        "job_seconds": _JOB_SECONDS,
        "shared_seconds": shared_seconds,
        "shared_executed_jobs": shared_executed,
        "distinct_seconds": distinct_seconds,
        "distinct_executed_jobs": distinct_executed,
        "deduplicated_clients": sum(1 for r in shared if r.deduplicated),
        "fan_out_speedup": distinct_seconds / max(shared_seconds, 1e-9),
    }


def test_service_roundtrip_and_single_flight(tmp_path):
    register_workload("bench-noop", _noop_workload)
    register_workload("bench-sweep", _bench_workload)
    try:
        payload = asyncio.run(asyncio.wait_for(_measure(tmp_path), 120))
    finally:
        unregister_workload("bench-noop")
        unregister_workload("bench-sweep")

    lines = [
        "service round-trip + single-flight fan-out",
        f"  no-op round trip   : {payload['roundtrip_ms']:.2f} ms",
        f"  {payload['clients']} clients, same sweep : "
        f"{payload['shared_seconds']:.3f} s, {payload['shared_executed_jobs']} jobs executed "
        f"({payload['deduplicated_clients']} deduplicated)",
        f"  {payload['clients']} distinct sweeps    : "
        f"{payload['distinct_seconds']:.3f} s, {payload['distinct_executed_jobs']} jobs executed",
        f"  fan-out speedup    : {payload['fan_out_speedup']:.2f}x",
    ]
    print("\n" + "\n".join(lines))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "service_roundtrip.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # The sweep ran once for the identical batch, N times for distinct.
    assert payload["shared_executed_jobs"] == _JOBS_PER_SWEEP
    assert payload["distinct_executed_jobs"] == _FAN_OUT_CLIENTS * _JOBS_PER_SWEEP
    assert payload["deduplicated_clients"] == _FAN_OUT_CLIENTS - 1
    # Shared submissions must beat sequential distinct ones comfortably.
    assert payload["fan_out_speedup"] > 2.0
    # Serving overhead stays in the interactive regime.
    assert payload["roundtrip_ms"] < 250.0
