"""Paper Fig. 6 / Section IV-C — OPTIMA model evaluation (RMS errors).

The paper fits Eq. 3-8 against 65 nm circuit-simulation data and reports RMS
modelling errors of 0.76 / 0.88 / 0.76 / 0.59 mV and 0.15 / 0.74 fJ.  The
benchmark runs the same calibration flow against this repository's reference
simulator and reports the measured residuals next to the paper's values.
The absolute numbers differ (different transistor data source); the claim
being reproduced is that every residual stays in the low-millivolt /
sub-femtojoule regime, i.e. below the read-out's LSB scale.
"""

from __future__ import annotations

from conftest import write_result

from repro.analysis.model_evaluation import format_rms_table, model_rms_report, paper_rms_reference
from repro.core.calibration import calibrate


def test_fig6_model_rms_errors(benchmark, technology, suite, exploration):
    # Time the full calibration flow (characterisation + fitting): this is
    # the "develop behavioural models" step of the paper.
    result = benchmark.pedantic(lambda: calibrate(technology), rounds=1, iterations=1)

    rows = model_rms_report(technology)
    table = format_rms_table(rows)

    # Voltage models: low-millivolt accuracy; energy models: sub-femtojoule.
    for row in rows:
        if row["unit"] == "mV":
            assert row["measured_rms"] < 8.0
        else:
            assert row["measured_rms"] < 1.0

    # The fitted models must be accurate relative to the multiplier read-out:
    # the worst voltage residual stays within a few product-LSBs.
    fom_point = exploration.best_fom()
    product_lsb_mv = fom_point.analysis.adc_lsb * 1e3
    worst_voltage_mv = max(row["measured_rms"] for row in rows if row["unit"] == "mV")
    assert worst_voltage_mv < 5.0 * product_lsb_mv

    reference = paper_rms_reference()
    lines = [
        "Fig. 6 / Section IV-C: OPTIMA model RMS errors (paper vs measured)",
        table,
        "",
        f"paper headline: worst voltage model RMS 0.88 mV "
        f"(reference values: {', '.join(f'{v * 1e3:.2f} mV' for k, v in reference.items() if 'energy' not in k)})",
        f"measured worst voltage model RMS: {worst_voltage_mv:.2f} mV "
        f"({result.data.record_count()} reference records fitted)",
    ]
    print("\n" + "\n".join(lines))
    write_result("fig6_model_rms", "\n".join(lines))
