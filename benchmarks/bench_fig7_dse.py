"""Paper Fig. 7 — design-space exploration corner sweeps.

Fig. 7 plots the average multiplication error and energy per operation for
48 design corners, swept against ``V_DAC,FS`` (left) and ``tau0`` (right) for
the three ``V_DAC,0`` values.  The benchmark regenerates both sweeps with the
OPTIMA-backed multiplier and asserts the trends the paper describes:

* higher ``V_DAC,FS`` increases energy roughly linearly and generally
  improves accuracy,
* higher ``V_DAC,0`` / ``tau0`` increase energy,
* ``tau0`` has only a minor influence on accuracy.
"""

from __future__ import annotations

import numpy as np
from conftest import write_result

from repro.analysis.design_space import figure7_slices
from repro.core.dse import explore_design_space


def test_fig7_design_space_sweeps(benchmark, suite, exploration):
    # Time the exploration itself (48 corners, full input space each) — the
    # operation the paper's speed-up argument is about.
    fresh = benchmark.pedantic(lambda: explore_design_space(suite), rounds=1, iterations=1)
    assert len(fresh.points) == 48

    slices = figure7_slices(exploration)

    # Left panel: sweep V_DAC,FS at the smallest tau0.
    lines = ["Fig. 7 (left): sweep of V_DAC,FS at the smallest tau0"]
    for v_zero in sorted({row["v_dac_zero"] for row in slices["versus_full_scale"]}):
        rows = [r for r in slices["versus_full_scale"] if r["v_dac_zero"] == v_zero]
        rows.sort(key=lambda r: r["v_dac_full_scale"])
        energies = [r["energy_fj"] for r in rows]
        errors = [r["eps_mul_lsb"] for r in rows]
        # Energy grows monotonically with the full-scale voltage ...
        assert np.all(np.diff(energies) > 0.0)
        # ... roughly linearly (the increments stay within 2x of each other).
        increments = np.diff(energies)
        assert np.max(increments) < 2.0 * np.min(increments)
        # Accuracy does not degrade when the full scale grows.
        assert errors[-1] <= errors[0] + 0.5
        lines.append(
            f"  V0={v_zero:.1f} V: "
            + ", ".join(
                f"FS={r['v_dac_full_scale']:.1f}->({r['eps_mul_lsb']:.2f} LSB, {r['energy_fj']:.1f} fJ)"
                for r in rows
            )
        )

    # Right panel: sweep tau0 at the largest V_DAC,FS.
    lines.append("Fig. 7 (right): sweep of tau0 at the largest V_DAC,FS")
    for v_zero in sorted({row["v_dac_zero"] for row in slices["versus_tau0"]}):
        rows = [r for r in slices["versus_tau0"] if r["v_dac_zero"] == v_zero]
        rows.sort(key=lambda r: r["tau0_ns"])
        energies = [r["energy_fj"] for r in rows]
        errors = [r["eps_mul_lsb"] for r in rows]
        assert np.all(np.diff(energies) > 0.0)
        # tau0 has minimal influence on accuracy (paper's observation).
        assert max(errors) - min(errors) < 3.0
        lines.append(
            f"  V0={v_zero:.1f} V: "
            + ", ".join(
                f"tau0={r['tau0_ns']:.2f}ns->({r['eps_mul_lsb']:.2f} LSB, {r['energy_fj']:.1f} fJ)"
                for r in rows
            )
        )

    print("\n" + "\n".join(lines))
    write_result("fig7_design_space", "\n".join(lines))
