"""Runtime-subsystem scaling benchmark: executors and the artifact cache.

Two measurements back the `repro.runtime` design claims:

* **parallel scaling** — the 48-corner design-space exploration through the
  process-pool executor versus the serial one.  Both must produce
  bit-identical corners; on hosts with >= 4 cores the parallel run must be
  at least 2x faster.
* **cache scaling** — a cold characterisation run (every sweep hits the
  reference solver) versus a warm re-run served entirely from the
  content-addressed artifact cache, which must be at least 10x faster and
  execute zero jobs.

The measured numbers are printed and written to
``benchmarks/results/runtime_scaling.json`` so CI runs leave a machine
readable artefact alongside the text tables of the other benches.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
from conftest import RESULTS_DIR

from repro.core.characterization import CharacterizationPlan, characterize
from repro.core.dse import explore_design_space
from repro.runtime import ArtifactCache, ParallelExecutor, SerialExecutor, SweepEngine


def _write_json(name: str, payload: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_runtime_parallel_scaling(benchmark, suite):
    cores = os.cpu_count() or 1
    workers = min(cores, 8)

    serial_engine = SweepEngine(SerialExecutor())
    start = time.perf_counter()
    serial = benchmark.pedantic(
        lambda: explore_design_space(suite, engine=serial_engine), rounds=1, iterations=1
    )
    serial_seconds = time.perf_counter() - start

    parallel_engine = SweepEngine(ParallelExecutor(max_workers=workers))
    start = time.perf_counter()
    parallel = explore_design_space(suite, engine=parallel_engine)
    parallel_seconds = time.perf_counter() - start

    # Whatever the schedule, the exploration is bit-identical.
    assert len(serial.points) == len(parallel.points) == 48
    for reference, candidate in zip(serial.points, parallel.points):
        np.testing.assert_array_equal(
            reference.analysis.results, candidate.analysis.results
        )
        assert reference.analysis.energy_per_multiplication == (
            candidate.analysis.energy_per_multiplication
        )

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    lines = [
        "runtime scaling: 48-corner DSE, serial vs process-pool executor",
        f"  cores={cores}, workers={workers}",
        f"  serial  : {serial_seconds:.3f} s",
        f"  parallel: {parallel_seconds:.3f} s",
        f"  speedup : {speedup:.2f}x (bit-identical results)",
    ]
    print("\n" + "\n".join(lines))
    _write_json(
        "runtime_scaling_parallel",
        {
            "cores": cores,
            "workers": workers,
            "corner_count": len(serial.points),
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
        },
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"parallel DSE must be >= 2x faster on {cores} cores, got {speedup:.2f}x"
        )


def test_runtime_cache_scaling(benchmark, technology, tmp_path):
    plan = CharacterizationPlan()
    cache = ArtifactCache(tmp_path / "artifact-cache")

    cold_engine = SweepEngine(cache=cache)
    start = time.perf_counter()
    cold = benchmark.pedantic(
        lambda: characterize(technology, plan, engine=cold_engine),
        rounds=1,
        iterations=1,
    )
    cold_seconds = time.perf_counter() - start

    warm_engine = SweepEngine(cache=cache)
    start = time.perf_counter()
    warm = characterize(technology, plan, engine=warm_engine)
    warm_seconds = time.perf_counter() - start

    # The warm run executes nothing — every sweep is served from disk.
    assert warm_engine.stats.jobs_executed == 0
    assert warm_engine.stats.cache_hits == warm_engine.stats.jobs_submitted > 0
    np.testing.assert_array_equal(cold.base.bitline_voltage, warm.base.bitline_voltage)
    np.testing.assert_array_equal(
        cold.discharge_energy.energy, warm.discharge_energy.energy
    )

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    lines = [
        "runtime scaling: characterisation, cold vs warm artifact cache",
        f"  records  : {cold.record_count()}",
        f"  cold run : {cold_seconds:.3f} s ({cold_engine.stats.jobs_executed} jobs executed)",
        f"  warm run : {warm_seconds:.3f} s (0 jobs executed, "
        f"{warm_engine.stats.cache_hits} cache hits)",
        f"  speedup  : {speedup:.1f}x",
    ]
    print("\n" + "\n".join(lines))
    _write_json(
        "runtime_scaling_cache",
        {
            "records": cold.record_count(),
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
            "warm_jobs_executed": warm_engine.stats.jobs_executed,
            "warm_cache_hits": warm_engine.stats.cache_hits,
        },
    )
    assert speedup >= 10.0, f"warm cache must be >= 10x faster, got {speedup:.1f}x"
