"""Shared fixtures and helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper.
The benchmarks use ``benchmark.pedantic(..., rounds=1)`` for the heavy
experiments (they are reproductions, not micro-benchmarks), print the
regenerated rows next to the paper's numbers, and additionally write them to
``benchmarks/results/`` so the artefacts survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.circuits.technology import tsmc65_like
from repro.core.calibration import calibrated_suite
from repro.core.dse import explore_design_space

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, content: str) -> pathlib.Path:
    """Persist a regenerated table / figure as a text artefact."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    return path


@pytest.fixture(scope="session")
def technology():
    """The default 65 nm-class technology card."""
    return tsmc65_like()


@pytest.fixture(scope="session")
def calibration(technology):
    """Session-wide OPTIMA calibration (characterisation + fitting)."""
    return calibrated_suite(technology)


@pytest.fixture(scope="session")
def suite(calibration):
    """Fitted OPTIMA model suite."""
    return calibration.suite


@pytest.fixture(scope="session")
def exploration(suite):
    """Session-wide 48-corner design-space exploration."""
    return explore_design_space(suite)


@pytest.fixture(scope="session")
def selected_corners(exploration):
    """The fom / power / variation corners selected by the exploration."""
    return {corner.name: corner.config for corner in exploration.selected_corners()}
