"""Paper Table II — DNN classification accuracy (ImageNet-scale experiment).

Table II evaluates VGG16/19 and ResNet50/101, INT4-quantised, with every
multiplication executed by the fom / power / variation in-SRAM multiplier
corners, on ImageNet.  The reproduction trains scaled-down counterparts of
the four models on the 20-class synthetic "imagenet-like" dataset and runs
the same five execution modes (FLOAT32, exact INT4, three corners).

Reproduced shape (not absolute percentages):

* FLOAT32 >= INT4 and the INT4 drop is small,
* the fom corner is the best in-memory corner,
* the power corner loses noticeably more accuracy,
* the variation corner collapses (its small-operand error dominates DNN
  workloads).
"""

from __future__ import annotations

from conftest import write_result

from repro.analysis.dnn_tables import (
    DnnExperimentConfig,
    corner_backends,
    format_accuracy_table,
    paper_table2_reference,
    run_dnn_accuracy_experiment,
)
from repro.dnn.datasets import imagenet_like


def test_table2_imagenet_like_accuracy(benchmark, technology, suite, selected_corners):
    config = DnnExperimentConfig(
        image_size=16,
        train_per_class=60,
        test_per_class=20,
        epochs=8,
    )
    backends = corner_backends(technology, suite=suite, corners=selected_corners)
    dataset = imagenet_like(
        image_size=config.image_size,
        train_per_class=config.train_per_class,
        test_per_class=config.test_per_class,
    )

    results = benchmark.pedantic(
        lambda: run_dnn_accuracy_experiment(dataset, backends, config),
        rounds=1,
        iterations=1,
    )

    # Persist the regenerated table before asserting its shape, so a failed
    # expectation still leaves the artefact for inspection.
    table = format_accuracy_table(results, paper_table2_reference())
    print("\n" + table)
    write_result("table2_imagenet_like", table)

    assert set(results) == {"VGG16", "VGG19", "ResNet50", "ResNet101"}
    for model, reports in results.items():
        assert set(reports) == {"float32", "int4", "fom", "power", "variation"}
        float32 = reports["float32"].top1
        int4 = reports["int4"].top1
        fom = reports["fom"].top1
        variation = reports["variation"].top1
        # The float model must actually learn the task, and INT4 must stay close.
        assert float32 > 0.7, model
        assert int4 > float32 - 0.25, model
        # The fom corner is the best of the in-memory corners (small slack:
        # the tiny models make per-model accuracies somewhat noisy).
        assert fom >= reports["power"].top1 - 0.1, model
        assert fom >= variation - 0.05, model
        # The variation corner loses accuracy relative to the INT4 baseline.
        assert variation < int4 - 0.05, model
        # Top-5 dominates top-1 everywhere.
        for report in reports.values():
            assert report.top5 >= report.top1

    # Aggregate (across the four models) shape of Table II: the variation
    # corner collapses on average, and the mode ordering holds on average.
    def average(mode: str) -> float:
        return sum(reports[mode].top1 for reports in results.values()) / len(results)

    assert average("variation") < average("int4") - 0.15
    assert average("fom") >= average("power") - 0.02
    assert average("power") >= average("variation") - 0.02
    assert average("fom") >= average("variation") + 0.1
