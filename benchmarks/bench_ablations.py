"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper artefacts; they quantify the impact of modelling and
circuit choices this reproduction makes:

* polynomial degrees of the Eq. 3 base model (accuracy vs parameter count),
* the Eq. 4 supply-correction form (discharge-referred vs the literal
  voltage-referred paper form),
* rank-1 separable fits vs full tensor-product fits,
* a compensating (nonlinear) word-line DAC vs the linear baseline DAC.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from conftest import write_result

from repro.core.characterization import CharacterizationPlan, characterize
from repro.core.fitting import ModelDegrees, fit_all_models
from repro.core.polynomials import SeparableProductModel, TensorPolynomialModel
from repro.multiplier.config import MultiplierConfig
from repro.multiplier.error_analysis import analyze_input_space
from repro.multiplier.imac import InSramMultiplier


def test_ablation_base_model_degrees(benchmark, technology):
    """Sweep the Eq. 3 polynomial degrees and report the RMS trade-off."""
    data = characterize(technology, CharacterizationPlan.quick())

    def sweep():
        rows = []
        for overdrive_degree in (2, 3, 4, 5):
            for time_degree in (1, 2, 3):
                degrees = ModelDegrees(
                    base_overdrive=overdrive_degree, base_time=time_degree
                )
                fitted = fit_all_models(data, degrees)
                rows.append(
                    {
                        "overdrive_degree": overdrive_degree,
                        "time_degree": time_degree,
                        "rms_mv": fitted.report.rms_base_discharge * 1e3,
                        "parameters": (overdrive_degree + 1) + (time_degree + 1),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    paper_row = [r for r in rows if r["overdrive_degree"] == 4 and r["time_degree"] == 2][0]
    worst = max(rows, key=lambda r: r["rms_mv"])
    best = min(rows, key=lambda r: r["rms_mv"])
    # The paper's degree choice is close to the best of the swept grid.
    assert paper_row["rms_mv"] <= worst["rms_mv"]
    assert paper_row["rms_mv"] <= best["rms_mv"] * 2.5

    lines = ["Ablation: Eq. 3 polynomial degrees (quick characterisation plan)"]
    for row in rows:
        marker = "  <- paper (p4, p2)" if row is paper_row else ""
        lines.append(
            f"  p{row['overdrive_degree']}(Vod) * p{row['time_degree']}(t): "
            f"{row['rms_mv']:.3f} mV RMS, {row['parameters']} coefficients{marker}"
        )
    print("\n" + "\n".join(lines))
    write_result("ablation_base_degrees", "\n".join(lines))


def test_ablation_supply_mode_and_tensor_fit(benchmark, technology):
    """Compare supply-correction forms and rank-1 vs full tensor fits."""
    data = characterize(technology, CharacterizationPlan.quick())

    def run():
        discharge_mode = fit_all_models(data, ModelDegrees(supply_mode="discharge"))
        voltage_mode = fit_all_models(data, ModelDegrees(supply_mode="voltage"))

        overdrive = data.base.wordline_voltage - technology.vth_nominal
        target = data.base.bitline_voltage - data.base.vdd
        rank1 = SeparableProductModel(degrees=(4, 2))
        rank1.fit([overdrive, data.base.time], target)
        tensor = TensorPolynomialModel(4, 2)
        tensor.fit(overdrive, data.base.time, target)
        return {
            "supply_discharge_mv": discharge_mode.report.rms_supply * 1e3,
            "supply_voltage_mv": voltage_mode.report.rms_supply * 1e3,
            "rank1_mv": rank1.rms_residual([overdrive, data.base.time], target) * 1e3,
            "tensor_mv": tensor.rms_residual(overdrive, data.base.time, target) * 1e3,
            "rank1_parameters": 5 + 3,
            "tensor_parameters": tensor.parameter_count,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # The discharge-referred supply correction is at least as accurate as the
    # literal paper form, and the full tensor fit is at least as accurate as
    # the rank-1 product (it strictly contains it).
    assert results["supply_discharge_mv"] <= results["supply_voltage_mv"] + 1e-9
    assert results["tensor_mv"] <= results["rank1_mv"] + 1e-9

    lines = [
        "Ablation: Eq. 4 supply-correction form",
        f"  discharge-referred (default): {results['supply_discharge_mv']:.3f} mV RMS",
        f"  voltage-referred (paper-literal): {results['supply_voltage_mv']:.3f} mV RMS",
        "Ablation: Eq. 3 rank-1 product vs full tensor polynomial",
        f"  rank-1 p4*p2 ({results['rank1_parameters']} coefficients): {results['rank1_mv']:.3f} mV RMS",
        f"  tensor 5x3 ({results['tensor_parameters']} coefficients): {results['tensor_mv']:.3f} mV RMS",
    ]
    print("\n" + "\n".join(lines))
    write_result("ablation_supply_and_tensor", "\n".join(lines))


def test_ablation_nonlinear_dac(benchmark, suite):
    """A compensating DAC (the AID idea, paper ref. [15]) reduces the error."""

    def run():
        linear = analyze_input_space(
            InSramMultiplier(
                suite, MultiplierConfig(v_dac_zero=0.3, v_dac_full_scale=1.0, name="linear-dac")
            )
        )
        shaped = analyze_input_space(
            InSramMultiplier(
                suite,
                MultiplierConfig(
                    v_dac_zero=0.3,
                    v_dac_full_scale=1.0,
                    dac_nonlinear_exponent=1.3,
                    name="compensating-dac",
                ),
            )
        )
        return linear, shaped

    linear, shaped = benchmark.pedantic(run, rounds=1, iterations=1)

    # The pre-distorted DAC linearises the code-to-discharge transfer, so the
    # mean multiplication error must not get worse.
    assert shaped.mean_error_lsb <= linear.mean_error_lsb * 1.05

    lines = [
        "Ablation: word-line DAC flavour (V0=0.3 V, FS=1.0 V, tau0=0.16 ns)",
        f"  linear DAC       : eps={linear.mean_error_lsb:.2f} LSB, "
        f"E={linear.energy_per_multiplication * 1e15:.1f} fJ",
        f"  compensating DAC : eps={shaped.mean_error_lsb:.2f} LSB, "
        f"E={shaped.energy_per_multiplication * 1e15:.1f} fJ",
    ]
    print("\n" + "\n".join(lines))
    write_result("ablation_nonlinear_dac", "\n".join(lines))
