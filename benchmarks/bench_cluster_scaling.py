"""Cluster-layer benchmark: Monte-Carlo PVT sharding across worker pools.

One measurement backs the `repro.cluster` design claim: a cold Monte-Carlo
mismatch sweep (the Fig. 5d panel, sharded into cluster chunks) must scale
with the worker-pool size.  The same sharded sweep runs through

* a 1-worker cluster (the distributed floor: all wire/pickle overhead,
  no parallelism), and
* a 4-worker cluster,

and both must reproduce the *serial, unsharded* panel bit-for-bit — the
executor contract that makes the cluster a drop-in backend.  On hosts with
>= 4 cores the 4-worker pool must be at least 2x faster than the 1-worker
pool; on smaller hosts (the usual 1-2 core CI box) the assertion relaxes to
completion + bit-identity, matching `bench_runtime_scaling.py`'s stance.

Results are printed and written to
``benchmarks/results/cluster_scaling.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
from conftest import RESULTS_DIR

from repro.analysis.pvt_sweeps import mismatch_monte_carlo, mismatch_monte_carlo_sharded
from repro.circuits.technology import tsmc65_like
from repro.cluster import DistributedExecutor
from repro.runtime import SweepEngine

_SAMPLES = 2048
_SHARDS = 16
_SEED = 2024


def _sharded_cold_run(workers: int, technology) -> tuple:
    """Run the sharded panel on a fresh cold cluster; returns (result, seconds)."""
    executor = DistributedExecutor(workers=workers, chunksize=1, start_timeout=120.0)
    executor.start()
    try:
        if executor._fallback is not None:
            raise RuntimeError("cluster cannot start in this environment")
        engine = SweepEngine(executor)  # no cache: every shard crosses the wire
        start = time.perf_counter()
        result = mismatch_monte_carlo_sharded(
            technology,
            samples=_SAMPLES,
            seed=_SEED,
            shards=_SHARDS,
            engine=engine,
        )
        elapsed = time.perf_counter() - start
        stats = executor.status()["stats"]
    finally:
        executor.close()
    return result, elapsed, stats


def test_cluster_scaling_monte_carlo(benchmark):
    cores = os.cpu_count() or 1
    technology = tsmc65_like()

    start = time.perf_counter()
    reference = benchmark.pedantic(
        lambda: mismatch_monte_carlo(technology, samples=_SAMPLES, seed=_SEED),
        rounds=1,
        iterations=1,
    )
    serial_seconds = time.perf_counter() - start

    single, single_seconds, single_stats = _sharded_cold_run(1, technology)
    pooled, pooled_seconds, pooled_stats = _sharded_cold_run(4, technology)

    # Whatever the pool size or dispatch schedule, the panel is bit-identical
    # to the serial, unsharded reference.
    for candidate in (single, pooled):
        np.testing.assert_array_equal(
            reference["sigma_at_sampling_times"], candidate["sigma_at_sampling_times"]
        )
        np.testing.assert_array_equal(
            reference["final_voltages"], candidate["final_voltages"]
        )
    assert single_stats["jobs_done"] == pooled_stats["jobs_done"] == _SHARDS

    speedup = single_seconds / max(pooled_seconds, 1e-9)
    lines = [
        "cluster scaling: cold Monte-Carlo PVT sweep "
        f"({_SAMPLES} samples, {_SHARDS} shards)",
        f"  cores={cores}",
        f"  serial (unsharded) : {serial_seconds:.3f} s",
        f"  1 worker           : {single_seconds:.3f} s "
        f"({single_stats['chunks_dispatched']} chunks)",
        f"  4 workers          : {pooled_seconds:.3f} s "
        f"({pooled_stats['chunks_stolen']} chunks stolen)",
        f"  speedup (1 -> 4)   : {speedup:.2f}x (bit-identical results)",
    ]
    print("\n" + "\n".join(lines))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "cluster_scaling.json").write_text(
        json.dumps(
            {
                "cores": cores,
                "samples": _SAMPLES,
                "shards": _SHARDS,
                "serial_seconds": serial_seconds,
                "single_worker_seconds": single_seconds,
                "four_worker_seconds": pooled_seconds,
                "speedup": speedup,
                "single_worker_stats": single_stats,
                "four_worker_stats": pooled_stats,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"4-worker pool must be >= 2x faster on {cores} cores, got {speedup:.2f}x"
        )
