"""Paper Table III — DNN classification accuracy (CIFAR-10-scale experiment).

Table III repeats the Table II experiment on CIFAR-10: the backbones keep
their weights, the classifier head is replaced by a 10-class layer and
briefly retrained (transfer learning), then the same five execution modes are
evaluated.  The reproduction follows the identical protocol on the synthetic
"cifar10-like" dataset (base training on the 20-class set, transfer to the
10-class set).

To keep the benchmark runtime moderate it evaluates the two model families at
one depth each (VGG16-style and ResNet50-style); the deeper variants exercise
exactly the same code path in the Table II benchmark.
"""

from __future__ import annotations

from conftest import write_result

from repro.analysis.dnn_tables import (
    DnnExperimentConfig,
    corner_backends,
    format_accuracy_table,
    paper_table3_reference,
    run_dnn_accuracy_experiment,
)
from repro.dnn.datasets import cifar10_like, imagenet_like
from repro.dnn.models import build_resnet50_like, build_vgg16_like


def test_table3_cifar10_like_accuracy(benchmark, technology, suite, selected_corners):
    config = DnnExperimentConfig(
        image_size=16,
        train_per_class=60,
        test_per_class=20,
        epochs=6,
        transfer_epochs=4,
    )
    backends = corner_backends(technology, suite=suite, corners=selected_corners)
    base_dataset = imagenet_like(
        image_size=config.image_size,
        train_per_class=config.train_per_class,
        test_per_class=10,
    )
    dataset = cifar10_like(
        image_size=config.image_size,
        train_per_class=config.train_per_class,
        test_per_class=config.test_per_class,
    )
    models = [
        ("VGG16", lambda: build_vgg16_like((16, 16, 3), base_dataset.classes)),
        ("ResNet50", lambda: build_resnet50_like((16, 16, 3), base_dataset.classes)),
    ]

    results = benchmark.pedantic(
        lambda: run_dnn_accuracy_experiment(
            dataset, backends, config, models=models, base_dataset=base_dataset
        ),
        rounds=1,
        iterations=1,
    )

    # Persist the regenerated table before asserting its shape, so a failed
    # expectation still leaves the artefact for inspection.
    table = format_accuracy_table(results, paper_table3_reference(), top5=False)
    print("\n" + table)
    write_result("table3_cifar10_like", table)

    for model, reports in results.items():
        float32 = reports["float32"].top1
        int4 = reports["int4"].top1
        # Transfer training must produce a working 10-class classifier.
        assert float32 > 0.7, model
        assert int4 > float32 - 0.25, model
        # Corner ordering as in Table III: fom best, variation worst.
        assert reports["fom"].top1 >= reports["variation"].top1 - 0.05, model
        assert reports["fom"].top1 >= reports["power"].top1 - 0.1, model
        assert reports["variation"].top1 < int4 - 0.05, model

    # Aggregate shape across the evaluated models.
    def average(mode: str) -> float:
        return sum(reports[mode].top1 for reports in results.values()) / len(results)

    assert average("variation") < average("int4") - 0.1
    assert average("fom") >= average("variation") + 0.05
