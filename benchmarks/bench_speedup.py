"""Paper Section V — simulation speed-up of OPTIMA over circuit simulation.

The paper reports a ~101x speed-up for iterating over the multiplier input
space / design corners and 28.1x for mismatch Monte-Carlo sampling, comparing
the OPTIMA models in a SystemVerilog simulator against Cadence Virtuoso.  The
equivalent comparison here pits the fitted polynomial models against the
ODE-based reference solver.  Absolute factors depend on the host and on how
strongly each side is vectorised; the reproduced claim is that the model-based
flow is one to three orders of magnitude faster for both workloads.
"""

from __future__ import annotations

from conftest import write_result

from repro.core.speedup import measure_speedup


def test_speedup_over_reference_simulation(benchmark, technology, suite):
    report = benchmark.pedantic(
        lambda: measure_speedup(
            technology,
            suite,
            input_space_repetitions=3,
            monte_carlo_samples=500,
        ),
        rounds=1,
        iterations=1,
    )

    # The paper's claim, reproduced in shape: both workloads are at least an
    # order of magnitude faster with the behavioural models.
    assert report.input_space_speedup > 10.0
    assert report.monte_carlo_speedup > 10.0

    lines = [
        "Section V speed-up reproduction",
        report.describe(),
        "",
        "paper reference: ~101x (input space / design corners), 28.1x (mismatch MC)",
    ]
    print("\n" + "\n".join(lines))
    write_result("speedup", "\n".join(lines))
