"""Paper Fig. 1 — state-of-the-art in-SRAM multiplication design space.

Fig. 1 compares published discharge-based in-SRAM multipliers along clock
frequency, energy per MAC and bit width.  The benchmark regenerates that
comparison from the published design points and places the corner selected
by this repository's exploration next to them.
"""

from __future__ import annotations

from conftest import write_result

from repro.analysis.sota import format_sota_table, sota_design_points


def test_fig1_sota_design_space(benchmark, exploration):
    points = benchmark(sota_design_points)

    assert len(points) == 4
    bit_widths = [point.bit_width for point in points]
    energies = [point.energy_pj_per_mac for point in points]
    clocks = [point.clock_mhz for point in points]
    # Shape of Fig. 1: bit widths span 4..8, energies span roughly an order
    # of magnitude, clocks span roughly 50..250 MHz.
    assert min(bit_widths) == 4 and max(bit_widths) == 8
    assert max(energies) / min(energies) > 5.0
    assert min(clocks) >= 50.0 and max(clocks) <= 300.0

    fom = exploration.best_fom()
    own_row = (
        f"{'ours':<6}{'OPTIMA-selected fom corner':<38}"
        f"{fom.config.operating_frequency / 1e6:>12.0f}"
        f"{fom.energy_per_multiplication * 1e12:>18.3f}{fom.config.bits:>11d}"
    )
    table = format_sota_table(points) + "\n" + own_row
    print("\n" + table)
    write_result("fig1_sota", table)
