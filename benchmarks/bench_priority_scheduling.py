"""Priority-scheduler benchmark: interactive latency under batch load.

The measurement behind the multi-tenant scheduler's design claim
(``docs/scheduling.md``): on a pool fully saturated by long batch chunks,
**FIFO makes short interactive requests wait for chunk completions** —
their latency is set by the batch chunk length — while priority tagging
plus preemption revokes a batch chunk's unstarted tail and serves the
urgent request in roughly one job time.  Preemption must cut the
interactive p50 latency by at least 2x.  Both regimes must reproduce the
serial results bit-for-bit — preempted-and-resumed batch sweeps lose no
work.

The pool is two local workers (one slot each).  The batch sweep rides
multi-second chunks that occupy both slots; interactive requests (two
tiny jobs each — single-job sweeps run inline and would never reach the
coordinator) arrive at fixed wall-clock offsets while the batch grinds.

Usage::

    PYTHONPATH=src python benchmarks/bench_priority_scheduling.py           # full
    PYTHONPATH=src python benchmarks/bench_priority_scheduling.py --smoke   # CI

``--smoke`` shrinks the load and skips the speedup assertion (CI
containers may lack the cores for the pool to behave like a pool);
completion and bit-identity are always asserted.  The speedup assertion
is additionally gated on >= 4 cores, matching the other cluster
benchmarks.

Results are printed and written to
``benchmarks/results/priority_scheduling.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster import DistributedExecutor
from repro.runtime import Job, SerialExecutor

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

_BATCH_ENTROPY = 20260808
_INTERACTIVE_ENTROPY = 20260809
_START_TIMEOUT = 120.0


def _timed_value(entropy: int, index: int, seconds: float) -> float:
    """One benchmark job: deterministic value, tunable wall time."""
    time.sleep(seconds)
    child = np.random.SeedSequence(entropy).spawn(index + 1)[index]
    return float(np.random.default_rng(child).standard_normal())


def _jobs(entropy: int, count: int, seconds: float, tag: str) -> List[Job]:
    return [
        Job(fn=_timed_value, args=(entropy, index, seconds), name=f"{tag}[{index}]")
        for index in range(count)
    ]


def _run_regime(
    preemptive: bool,
    batch_count: int,
    batch_job_seconds: float,
    requests: int,
    request_offset: float,
    request_gap: float,
) -> Tuple[List[float], List[List[float]], List[float], Dict[str, Any]]:
    """One regime on a fresh 2-worker pool.

    Returns ``(batch_results, interactive_results, latencies, sched_stats)``.
    The FIFO regime leaves everything untagged (batch/priority-0, the
    default — exactly the pre-scheduler behaviour); the preemptive regime
    tags the urgent requests ``interactive``.
    """
    executor = DistributedExecutor(
        workers=2,
        chunksize=max(1, batch_count // 2),  # multi-second chunks: 1 per worker
        heartbeat_interval=0.05,
        heartbeat_timeout=5.0,
        start_timeout=_START_TIMEOUT,
    )
    executor.start()
    try:
        if executor._fallback is not None:
            raise RuntimeError("cluster cannot start in this environment")
        executor.wait_for_workers(2, timeout=_START_TIMEOUT)
        batch_outcome: Dict[str, Any] = {}
        interactive_results: List[Optional[List[float]]] = [None] * requests
        latencies: List[Optional[float]] = [None] * requests
        start_gate = threading.Event()

        def run_batch() -> None:
            try:
                start_gate.set()
                batch_outcome["results"] = executor.execute(
                    _jobs(_BATCH_ENTROPY, batch_count, batch_job_seconds, "batch")
                )
            except BaseException as error:  # re-raised on join
                batch_outcome["error"] = error

        def run_interactive(slot: int) -> None:
            time.sleep(request_offset + slot * request_gap)
            begin = time.perf_counter()
            interactive_results[slot] = executor.execute(
                _jobs(_INTERACTIVE_ENTROPY + slot, 2, 0.005, f"urgent{slot}"),
                sched={"class": "interactive"} if preemptive else None,
            )
            latencies[slot] = time.perf_counter() - begin

        batch_thread = threading.Thread(target=run_batch)
        batch_thread.start()
        start_gate.wait()
        interactive_threads = [
            threading.Thread(target=run_interactive, args=(slot,))
            for slot in range(requests)
        ]
        for thread in interactive_threads:
            thread.start()
        for thread in interactive_threads:
            thread.join()
        batch_thread.join()
        if "error" in batch_outcome:
            raise batch_outcome["error"]
        sched_stats = executor.status()["sched"]["stats"]
    finally:
        executor.close()
    assert all(result is not None for result in interactive_results)
    assert all(latency is not None for latency in latencies)
    return batch_outcome["results"], interactive_results, latencies, sched_stats


def run_benchmark(smoke: bool = False) -> dict:
    """FIFO vs priority+preemption under saturating batch load."""
    cores = os.cpu_count() or 1
    batch_count = 40 if smoke else 160
    batch_job_seconds = 0.02 if smoke else 0.05
    requests = 3 if smoke else 5
    request_offset = 0.15 if smoke else 0.5
    request_gap = 0.1 if smoke else 0.4

    batch_reference = SerialExecutor().execute(
        _jobs(_BATCH_ENTROPY, batch_count, 0.0, "batch")
    )
    interactive_references = [
        SerialExecutor().execute(
            _jobs(_INTERACTIVE_ENTROPY + slot, 2, 0.0, f"urgent{slot}")
        )
        for slot in range(requests)
    ]

    regimes: Dict[str, Dict[str, Any]] = {}
    for name, preemptive in (("fifo", False), ("preemptive", True)):
        batch_results, interactive_results, latencies, sched_stats = _run_regime(
            preemptive,
            batch_count,
            batch_job_seconds,
            requests,
            request_offset,
            request_gap,
        )
        assert batch_results == batch_reference, f"{name} batch diverged from serial"
        for slot, result in enumerate(interactive_results):
            assert result == interactive_references[slot], (
                f"{name} interactive request {slot} diverged from serial"
            )
        regimes[name] = {
            "latencies_seconds": latencies,
            "p50_seconds": statistics.median(latencies),
            "max_seconds": max(latencies),
            "sched_stats": sched_stats,
        }

    fifo_p50 = regimes["fifo"]["p50_seconds"]
    preemptive_p50 = regimes["preemptive"]["p50_seconds"]
    speedup = fifo_p50 / max(preemptive_p50, 1e-9)
    record = {
        "cores": cores,
        "smoke": smoke,
        "batch_count": batch_count,
        "batch_job_seconds": batch_job_seconds,
        "requests": requests,
        "pool": "2 workers x 1 slot",
        "fifo": regimes["fifo"],
        "preemptive": regimes["preemptive"],
        "p50_speedup_fifo_to_preemptive": speedup,
    }

    lines = [
        "priority scheduling: interactive p50 under saturating batch load "
        f"({batch_count} batch jobs x {batch_job_seconds * 1e3:.0f} ms, "
        f"{requests} urgent requests)",
        f"  cores={cores}  pool={record['pool']}",
        f"  FIFO        p50: {fifo_p50:.3f} s  "
        f"(max {regimes['fifo']['max_seconds']:.3f} s)",
        f"  preemptive  p50: {preemptive_p50:.3f} s  "
        f"(max {regimes['preemptive']['max_seconds']:.3f} s, "
        f"{regimes['preemptive']['sched_stats']['preemptions']} preemptions, "
        f"{regimes['preemptive']['sched_stats']['resumes']} resumes)",
        f"  p50 speedup    : {speedup:.2f}x (bit-identical results)",
    ]
    print("\n" + "\n".join(lines))

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "priority_scheduling.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )

    if cores >= 4 and not smoke:
        assert regimes["preemptive"]["sched_stats"]["preemptions"] >= 1, (
            "the preemptive regime never preempted — the pool was not saturated"
        )
        assert speedup >= 2.0, (
            f"preemption must cut interactive p50 by >=2x under batch load "
            f"({cores} cores), got {speedup:.2f}x"
        )
    return record


def test_preemption_cuts_interactive_latency():
    """Pytest entry point: full measurement on >=4 cores, smoke otherwise."""
    run_benchmark(smoke=(os.cpu_count() or 1) < 4)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Interactive p50 under batch load: FIFO vs priority+preemption"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced load; skip the speedup assertion (CI containers)",
    )
    args = parser.parse_args(argv)
    run_benchmark(smoke=args.smoke)
    return 0


if __name__ == "__main__":
    # Re-enter through the importable module name: job functions must not
    # live in ``__main__`` or the worker processes could not unpickle them.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    import bench_priority_scheduling as _module

    if _module.__name__ == "__main__":  # pragma: no cover - defensive
        raise SystemExit("re-import failed; run via pytest instead")
    sys.exit(_module.main(sys.argv[1:]))
