"""Vectorised-default hot-path benchmark: per-job serial vs auto engine.

The tentpole claim of the vectorised default: a PVT Monte-Carlo sweep whose
spec carries a ``batch_fn`` runs whole chunks as single NumPy passes (the
deterministic mean discharge and the mismatch sigma are hoisted out of the
per-sample loop), and the engine selects that strategy **by default** — no
``--executor`` flag, no caller opt-in.  This benchmark measures the hot
path both ways on the same fitted OPTIMA suite:

* **per-job serial** — one Python pass per Monte-Carlo sample, the
  pre-vectorisation behaviour (``SweepEngine(make_executor("serial"))``);
* **vectorised default** — an auto engine (``SweepEngine()`` built with no
  executor), which routes the ``batch_fn``-carrying spec through the batch
  strategy.

Both must produce bit-identical error distributions; the vectorised
default must be at least 2x faster.  The PVT sensitivity sweep (supply +
temperature axes through ``analyze_corner_robustness``) is measured the
same way as a secondary record.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py           # full
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke   # CI

``--smoke`` shrinks the sample count and skips the speedup assertion (CI
containers can be noisy); completion and bit-identity are always asserted.
The speedup assertion is additionally gated on >= 4 cores, matching the
other benchmarks.  Results are printed and written to
``benchmarks/results/BENCH_hotpath.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.circuits import tsmc65_like
from repro.core.calibration import calibrate
from repro.core.characterization import CharacterizationPlan
from repro.core.pvt import analyze_corner_robustness, monte_carlo_error_distribution
from repro.multiplier.config import MultiplierConfig
from repro.runtime import SweepEngine, make_executor

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

_SEED = 20260808
_REPEATS = 3  # best-of to damp scheduler noise on loaded CI hosts


def _bench_config() -> MultiplierConfig:
    return MultiplierConfig(
        tau0=0.16e-9, v_dac_zero=0.3, v_dac_full_scale=1.0, name="hotpath-bench"
    )


def _best_of(fn) -> Tuple[float, object]:
    """Best wall time of ``_REPEATS`` runs plus the (identical) result."""
    best = float("inf")
    result = None
    for _ in range(_REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_benchmark(smoke: bool = False) -> dict:
    """Measure per-job serial vs vectorised default; returns the record."""
    cores = os.cpu_count() or 1
    samples = 64 if smoke else 256

    suite = calibrate(tsmc65_like(), CharacterizationPlan.quick()).suite
    config = _bench_config()

    # --- Monte-Carlo error distribution over the full input space --------
    serial_seconds, serial_errors = _best_of(
        lambda: monte_carlo_error_distribution(
            suite,
            config,
            samples=samples,
            seed=_SEED,
            engine=SweepEngine(make_executor("serial")),
        )
    )
    parallel_seconds, parallel_errors = _best_of(
        lambda: monte_carlo_error_distribution(
            suite,
            config,
            samples=samples,
            seed=_SEED,
            engine=SweepEngine(make_executor("parallel")),
        )
    )
    auto_seconds, auto_errors = _best_of(
        lambda: monte_carlo_error_distribution(
            suite, config, samples=samples, seed=_SEED
        )
    )
    assert np.array_equal(serial_errors, auto_errors), (
        "vectorised default diverged from the per-job serial Monte-Carlo"
    )
    assert np.array_equal(serial_errors, parallel_errors), (
        "per-job parallel diverged from the per-job serial Monte-Carlo"
    )
    mc_speedup = serial_seconds / max(auto_seconds, 1e-9)
    parallel_speedup = parallel_seconds / max(auto_seconds, 1e-9)

    # --- PVT sensitivity sweep (supply + temperature axes) ---------------
    pvt_serial_seconds, serial_report = _best_of(
        lambda: analyze_corner_robustness(
            suite, config, engine=SweepEngine(make_executor("serial"))
        )
    )
    pvt_auto_seconds, auto_report = _best_of(
        lambda: analyze_corner_robustness(suite, config)
    )
    assert np.array_equal(
        serial_report.supply_sweep.mean_error_lsb,
        auto_report.supply_sweep.mean_error_lsb,
    ), "vectorised default diverged on the supply sweep"
    assert np.array_equal(
        serial_report.temperature_sweep.mean_error_lsb,
        auto_report.temperature_sweep.mean_error_lsb,
    ), "vectorised default diverged on the temperature sweep"
    pvt_speedup = pvt_serial_seconds / max(pvt_auto_seconds, 1e-9)

    record = {
        "cores": cores,
        "smoke": smoke,
        "monte_carlo_samples": samples,
        "repeats": _REPEATS,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "vectorised_seconds": auto_seconds,
        "speedup": mc_speedup,
        "speedup_vs_parallel": parallel_speedup,
        "pvt_serial_seconds": pvt_serial_seconds,
        "pvt_vectorised_seconds": pvt_auto_seconds,
        "pvt_speedup": pvt_speedup,
        "bit_identical": True,
    }

    lines = [
        f"vectorised-default hot path ({samples} Monte-Carlo samples, "
        f"best of {_REPEATS})",
        f"  cores={cores}",
        f"  per-job serial       : {serial_seconds:.3f} s",
        f"  per-job parallel     : {parallel_seconds:.3f} s",
        f"  vectorised default   : {auto_seconds:.3f} s",
        f"  speedup vs serial    : {mc_speedup:.2f}x (bit-identical)",
        f"  speedup vs parallel  : {parallel_speedup:.2f}x (bit-identical)",
        f"  PVT sensitivity sweep: {pvt_serial_seconds:.3f} s -> "
        f"{pvt_auto_seconds:.3f} s ({pvt_speedup:.2f}x, bit-identical)",
    ]
    print("\n" + "\n".join(lines))

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_hotpath.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )

    if cores >= 4 and not smoke:
        assert mc_speedup >= 2.0, (
            f"vectorised default must be >= 2x the per-job serial hot path "
            f"({cores} cores), got {mc_speedup:.2f}x"
        )
        assert parallel_speedup >= 2.0, (
            f"vectorised default must be >= 2x the per-job parallel executor "
            f"({cores} cores), got {parallel_speedup:.2f}x"
        )
    return record


def test_vectorised_default_hot_path():
    """Pytest entry point: full measurement on >=4 cores, smoke otherwise."""
    run_benchmark(smoke=(os.cpu_count() or 1) < 4)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Per-job serial vs vectorised-default PVT hot path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sample count; skip the speedup assertion (CI containers)",
    )
    args = parser.parse_args(argv)
    run_benchmark(smoke=args.smoke)
    return 0


if __name__ == "__main__":
    # Re-enter through the importable module name so job functions resolve
    # for any process-pool executor a future variant might use.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    import bench_hotpath as _module

    if _module.__name__ == "__main__":  # pragma: no cover - defensive
        raise SystemExit("re-import failed; run via pytest instead")
    sys.exit(_module.main(sys.argv[1:]))
