"""Paper Fig. 4 — BLB discharge non-idealities.

Fig. 4a shows the bit-line-bar voltage over time for several word-line
voltages (including the residual sub-threshold discharge and the saturation
limit); Fig. 4b shows the nonlinear dependence of the sampled voltage on the
word-line voltage.  The benchmark regenerates both panels from the reference
simulator and asserts their qualitative shape.
"""

from __future__ import annotations

import numpy as np
from conftest import write_result

from repro.analysis.nonidealities import discharge_vs_time, discharge_vs_wordline_voltage


def test_fig4a_discharge_over_time(benchmark, technology):
    curves = benchmark.pedantic(
        lambda: discharge_vs_time(
            technology, wordline_voltages=(0.3, 0.5, 0.7, 0.9, 1.0), duration=2.0e-9
        ),
        rounds=1,
        iterations=1,
    )

    finals = {curve.wordline_voltage: curve.final_voltage for curve in curves}
    # Higher word-line voltage -> deeper discharge (monotone family of curves).
    ordered = [finals[v] for v in sorted(finals)]
    assert all(earlier >= later for earlier, later in zip(ordered, ordered[1:]))
    # A '0'-ish input (0.3 V) leaves the line essentially at VDD while the
    # full-scale input discharges by hundreds of millivolt.
    assert finals[0.3] > 0.97
    assert finals[1.0] < 0.6
    # The strongest discharge leaves saturation inside the 2 ns window
    # (paper Eq. 2 / the dotted saturation annotation of Fig. 4a).
    strongest = [c for c in curves if c.wordline_voltage == 1.0][0]
    assert strongest.leaves_saturation

    lines = ["Fig. 4a: final V_BLB after 2 ns"]
    for voltage in sorted(finals):
        lines.append(f"  V_WL = {voltage:.1f} V -> V_BLB = {finals[voltage]:.3f} V")
    lines.append(
        f"  saturation limit at V_WL = 1.0 V crossed after "
        f"{strongest.saturation_time * 1e9:.2f} ns"
    )
    print("\n" + "\n".join(lines))
    write_result("fig4a_discharge_vs_time", "\n".join(lines))


def test_fig4b_wordline_nonlinearity(benchmark, technology):
    sweep = benchmark.pedantic(
        lambda: discharge_vs_wordline_voltage(technology, sampling_time=1.28e-9),
        rounds=1,
        iterations=1,
    )

    discharge = sweep["discharge"]
    # Monotone but nonlinear transfer: the deviation from the straight line
    # between the endpoints is well above the millivolt scale.
    assert np.all(np.diff(discharge) >= -1e-6)
    assert float(np.max(np.abs(sweep["nonlinearity"]))) > 5e-3

    lines = ["Fig. 4b: V_BLB vs V_WL sampled at 1.28 ns"]
    for v_wl, v_bl in zip(sweep["wordline_voltage"], sweep["bitline_voltage"]):
        lines.append(f"  V_WL = {v_wl:.2f} V -> V_BLB = {v_bl:.3f} V")
    lines.append(
        f"  worst-case deviation from linear transfer: "
        f"{float(np.max(np.abs(sweep['nonlinearity']))) * 1e3:.1f} mV"
    )
    print("\n" + "\n".join(lines))
    write_result("fig4b_wordline_nonlinearity", "\n".join(lines))
