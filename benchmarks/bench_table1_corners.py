"""Paper Table I — selected design corners (plus the headline numbers).

Table I lists the three corners the design-space exploration selects (fom,
power, variation) with their circuit parameters, average multiplication error
and energy.  The benchmark regenerates the selection with this repository's
exploration, prints the measured metrics next to the paper's values, and
checks the qualitative relations the paper draws from the table:

* the power corner has the minimum energy,
* the fom corner has the best error/energy trade-off (and the lowest error
  among the selected corners),
* the variation corner is the one least impacted by process variation but
  pays for it with the largest error, concentrated on small operands,
* the full-operation energy lands at the picojoule scale (paper: 1.05 pJ)
  and the operating frequency in the hundreds of MHz (paper: 167 MHz).
"""

from __future__ import annotations

from conftest import write_result

from repro.analysis.design_space import (
    corner_summary_rows,
    format_table1,
    paper_table1_reference,
)


def test_table1_selected_corners(benchmark, exploration):
    rows = benchmark.pedantic(
        lambda: corner_summary_rows(exploration), rounds=1, iterations=1
    )
    by_name = {row["corner"]: row for row in rows}

    assert set(by_name) == {"fom", "power", "variation"}

    # Energy ordering: power < fom < variation (paper: 37 < 44 < 69.8 fJ).
    assert by_name["power"]["energy_fj"] < by_name["fom"]["energy_fj"]
    assert by_name["fom"]["energy_fj"] < by_name["variation"]["energy_fj"]

    # The fom corner is the most accurate of the three selected corners.
    assert by_name["fom"]["eps_mul_lsb"] <= by_name["power"]["eps_mul_lsb"]
    assert by_name["fom"]["eps_mul_lsb"] <= by_name["variation"]["eps_mul_lsb"]

    # The variation corner has the smallest relative mismatch sigma but the
    # largest small-operand error (the mechanism behind its DNN collapse).
    assert by_name["variation"]["relative_sigma_percent"] <= by_name["power"]["relative_sigma_percent"]
    assert (
        by_name["variation"]["small_operand_error_lsb"]
        > by_name["fom"]["small_operand_error_lsb"]
    )

    # Headline scales: tens of femtojoule per multiply, around a picojoule
    # per full operation, >100 MHz operating frequency.
    for row in rows:
        assert 10.0 < row["energy_fj"] < 200.0
        assert 0.1 < row["energy_per_operation_pj"] < 5.0
        assert row["operating_frequency_mhz"] > 100.0

    table = format_table1(rows, paper_table1_reference())
    extra = [
        "",
        "full-operation energy (write + multiply):",
    ]
    for row in rows:
        extra.append(
            f"  {row['corner']:<10} {row['energy_per_operation_pj']:.2f} pJ "
            f"(paper headline: 1.05 pJ for the fom corner), "
            f"f_clk = {row['operating_frequency_mhz']:.0f} MHz (paper: 167 MHz)"
        )
    content = table + "\n" + "\n".join(extra)
    print("\n" + content)
    write_result("table1_selected_corners", content)
