"""Paper Fig. 5 — influence of PVT variations on the BLB discharge.

Four panels: supply voltage, temperature, global process corners, and
transistor mismatch (1000 Monte-Carlo samples).  The benchmark regenerates
all four on the reference simulator and asserts the orderings the paper
describes (supply and process dominate, temperature is minor, mismatch
spread grows with time).
"""

from __future__ import annotations

import numpy as np
from conftest import write_result

from repro.analysis.pvt_sweeps import (
    corner_sweep,
    mismatch_monte_carlo,
    supply_sweep,
    temperature_sweep,
)


def test_fig5_pvt_influence(benchmark, technology):
    def run_all():
        return {
            "supply": supply_sweep(technology),
            "temperature": temperature_sweep(technology),
            "corner": corner_sweep(technology),
            "mismatch": mismatch_monte_carlo(technology, samples=1000),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # (a) supply: higher VDD discharges further below its own rail.
    supply = results["supply"]
    swing = {vdd: trace[0] - trace[-1] for vdd, trace in supply.items() if vdd > 0}
    assert swing[1.1] > swing[1.0] > swing[0.9]

    # (b) temperature: minor effect, hot is slower.
    temperature = results["temperature"]
    temp_swing = {t: trace[0] - trace[-1] for t, trace in temperature.items() if t >= 0}
    assert temp_swing[0.0] > temp_swing[70.0]
    temperature_span = temp_swing[0.0] - temp_swing[70.0]

    # (c) process corners: fast > typical > slow, and the corner-to-corner
    # span exceeds the temperature span (paper: temperature is the minor axis).
    corners = results["corner"]
    corner_swing = {
        name: corners[name][0] - corners[name][-1] for name in ("fast", "typical", "slow")
    }
    assert corner_swing["fast"] > corner_swing["typical"] > corner_swing["slow"]
    assert (corner_swing["fast"] - corner_swing["slow"]) > temperature_span

    # (d) mismatch: Gaussian spread grows with elapsed discharge time.
    mismatch = results["mismatch"]
    sigmas = mismatch["sigma_at_sampling_times"]
    assert np.all(np.diff(sigmas) > 0.0)
    assert mismatch["final_voltages"].shape == (1000,)

    lines = ["Fig. 5: PVT influence on the BLB discharge (V_WL = 0.9 V, 2 ns window)"]
    lines.append("  (a) supply swing    : " + ", ".join(
        f"VDD={vdd:.1f} V -> {value * 1e3:.0f} mV" for vdd, value in sorted(swing.items())
    ))
    lines.append("  (b) temperature swing: " + ", ".join(
        f"T={temp:.0f} C -> {value * 1e3:.0f} mV" for temp, value in sorted(temp_swing.items())
    ))
    lines.append("  (c) corner swing     : " + ", ".join(
        f"{name} -> {value * 1e3:.0f} mV" for name, value in corner_swing.items()
    ))
    lines.append("  (d) mismatch sigma   : " + ", ".join(
        f"{t * 1e9:.1f} ns -> {s * 1e3:.1f} mV"
        for t, s in zip(mismatch["sampling_times"], sigmas)
    ))
    print("\n" + "\n".join(lines))
    write_result("fig5_pvt_influence", "\n".join(lines))
