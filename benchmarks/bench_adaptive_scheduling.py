"""Adaptive-scheduler benchmark: a heterogeneous pool with one straggler.

The measurement behind the adaptive policy's design claim
(``docs/scheduling.md``): on a pool where one worker is much slower than
the rest, **static chunking finishes at the straggler's pace** while the
adaptive scheduler (``chunk_window``) sizes the slow worker's chunks down,
splits its in-flight backlog and keeps the fast workers saturated — so the
adaptive makespan must beat the static one.  Both runs must reproduce the
serial result bit-for-bit, whatever the resize/split/steal history.

The pool is three normal local workers plus one deliberately slowed worker
(``python -m repro worker --throttle``, the chaos knob added for exactly
this purpose).  The static run uses one chunk per worker — the classic
static shard, where nothing can rebalance the straggler's chunk; the
adaptive run starts from 1-job probes and lets the window policy take over.

Usage::

    PYTHONPATH=src python benchmarks/bench_adaptive_scheduling.py           # full
    PYTHONPATH=src python benchmarks/bench_adaptive_scheduling.py --smoke   # CI

``--smoke`` shrinks the job count and skips the speedup assertion (CI
containers may have too few cores for the pool to show parallel headroom);
completion and bit-identity are always asserted.  The speedup assertion is
additionally gated on >= 4 cores, matching ``bench_cluster_scaling.py``.

Results are printed and written to
``benchmarks/results/adaptive_scheduling.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster import DistributedExecutor
from repro.cluster.executor import spawn_worker_process
from repro.runtime import Job, SerialExecutor

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

_ENTROPY = 20260728
_JOB_SECONDS = 0.012  # per-job work on a normal worker
_THROTTLE = 0.10      # extra per-job delay on the straggler
_WINDOW = 0.15        # adaptive wall-time window
_START_TIMEOUT = 120.0


def _timed_value(entropy: int, index: int, seconds: float) -> float:
    """One benchmark job: deterministic value, tunable wall time.

    The value depends only on ``(entropy, index)`` — the sleep models the
    solver cost, so every executor (and every dispatch history) must
    reproduce the exact same floats.
    """
    time.sleep(seconds)
    child = np.random.SeedSequence(entropy).spawn(index + 1)[index]
    return float(np.random.default_rng(child).standard_normal())


def _jobs(count: int, seconds: float) -> List[Job]:
    return [
        Job(fn=_timed_value, args=(_ENTROPY, index, seconds), name=f"bench[{index}]")
        for index in range(count)
    ]


def _spawn_straggler(address: Tuple[str, int], throttle: float) -> subprocess.Popen:
    """Join one deliberately slowed worker to a running cluster endpoint."""
    host, port = address
    return spawn_worker_process(
        f"{host}:{port}",
        name="straggler",
        throttle=throttle,
        connect_timeout=_START_TIMEOUT,
    )


def _run_pool(
    job_count: int,
    chunk_window: Optional[float],
    chunksize: Optional[int],
    fast_workers: int = 3,
) -> Tuple[List[float], float, dict]:
    """Run the sweep on a fresh pool of fast workers + one straggler.

    Returns ``(results, makespan_seconds, coordinator_stats)``.
    """
    executor = DistributedExecutor(
        workers=fast_workers,
        chunksize=chunksize,
        chunk_window=chunk_window,
        heartbeat_interval=0.05,
        heartbeat_timeout=5.0,
        start_timeout=_START_TIMEOUT,
    )
    executor.start()
    straggler: Optional[subprocess.Popen] = None
    try:
        if executor._fallback is not None:
            raise RuntimeError("cluster cannot start in this environment")
        assert executor.coordinator is not None
        straggler = _spawn_straggler(executor.address, _THROTTLE)
        executor.wait_for_workers(fast_workers + 1, timeout=_START_TIMEOUT)
        start = time.perf_counter()
        results = executor.execute(_jobs(job_count, _JOB_SECONDS))
        makespan = time.perf_counter() - start
        stats = executor.status()["stats"]
    finally:
        executor.close()
        if straggler is not None and straggler.poll() is None:
            straggler.terminate()
            try:
                straggler.wait(timeout=10)
            except subprocess.TimeoutExpired:
                straggler.kill()
    return results, makespan, stats


def run_benchmark(smoke: bool = False) -> dict:
    """Run static vs adaptive on the straggler pool; returns the record."""
    cores = os.cpu_count() or 1
    fast_workers = 3
    pool_size = fast_workers + 1
    job_count = 24 if smoke else 48

    serial_start = time.perf_counter()
    reference = SerialExecutor().execute(_jobs(job_count, _JOB_SECONDS))
    serial_seconds = time.perf_counter() - serial_start

    # Static chunking at one chunk per worker: the straggler's chunk is
    # dispatched whole and nothing can rebalance it.
    static_results, static_seconds, static_stats = _run_pool(
        job_count, chunk_window=None, chunksize=max(1, job_count // pool_size)
    )
    # Adaptive: 1-job probes, then throughput-sized chunks + straggler splits.
    adaptive_results, adaptive_seconds, adaptive_stats = _run_pool(
        job_count, chunk_window=_WINDOW, chunksize=None
    )

    assert static_results == reference, "static pool diverged from serial"
    assert adaptive_results == reference, "adaptive pool diverged from serial"

    speedup = static_seconds / max(adaptive_seconds, 1e-9)
    record = {
        "cores": cores,
        "smoke": smoke,
        "job_count": job_count,
        "job_seconds": _JOB_SECONDS,
        "throttle": _THROTTLE,
        "chunk_window": _WINDOW,
        "pool": f"{fast_workers} fast + 1 straggler",
        "serial_seconds": serial_seconds,
        "static_seconds": static_seconds,
        "adaptive_seconds": adaptive_seconds,
        "speedup_static_to_adaptive": speedup,
        "static_stats": static_stats,
        "adaptive_stats": adaptive_stats,
    }

    lines = [
        "adaptive scheduling: straggler pool makespan "
        f"({job_count} jobs x {_JOB_SECONDS * 1e3:.0f} ms, "
        f"straggler +{_THROTTLE * 1e3:.0f} ms/job)",
        f"  cores={cores}  pool={record['pool']}",
        f"  serial               : {serial_seconds:.3f} s",
        f"  static (1 chunk/worker): {static_seconds:.3f} s "
        f"({static_stats['chunks_dispatched']} chunks)",
        f"  adaptive (window {_WINDOW:g} s): {adaptive_seconds:.3f} s "
        f"({adaptive_stats['chunks_dispatched']} chunks, "
        f"{adaptive_stats['chunks_split']} split, "
        f"{adaptive_stats['chunks_stolen']} stolen)",
        f"  makespan speedup     : {speedup:.2f}x (bit-identical results)",
    ]
    print("\n" + "\n".join(lines))

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "adaptive_scheduling.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )

    if cores >= 4 and not smoke:
        assert speedup > 1.0, (
            f"adaptive policy must beat static chunking on a straggler pool "
            f"({cores} cores), got {speedup:.2f}x"
        )
    return record


def test_adaptive_beats_static():
    """Pytest entry point: full measurement on >=4 cores, smoke otherwise."""
    run_benchmark(smoke=(os.cpu_count() or 1) < 4)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Adaptive vs static cluster scheduling on a straggler pool"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced job count; skip the speedup assertion (CI containers)",
    )
    args = parser.parse_args(argv)
    run_benchmark(smoke=args.smoke)
    return 0


if __name__ == "__main__":
    # Re-enter through the importable module name: job functions must not
    # live in ``__main__`` or the worker processes could not unpickle them.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    import bench_adaptive_scheduling as _module

    if _module.__name__ == "__main__":  # pragma: no cover - defensive
        raise SystemExit("re-import failed; run via pytest instead")
    sys.exit(_module.main(sys.argv[1:]))
